//! Property-based tests over the core data structures and invariants,
//! spanning crates (hence at workspace level).
//!
//! The build environment is offline, so instead of `proptest` these use a
//! small deterministic case generator: each property is checked against a
//! few hundred pseudo-random inputs drawn from a fixed seed, which keeps
//! failures reproducible without any shrinking machinery.

use mafic_suite::core::{AddressValidator, FlowLabel, LabelMode, MaficConfig, MaficFilter};
use mafic_suite::loglog::{LogLog, Precision};
use mafic_suite::netsim::testkit::FilterHarness;
use mafic_suite::netsim::{
    Addr, DropReason, FilterAction, FlowInterner, FlowKey, Packet, PacketKind, Provenance,
    SimDuration, SimTime,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 300;

fn case_rng(salt: u64) -> SmallRng {
    SmallRng::seed_from_u64(0x1B5E_55ED ^ salt)
}

fn arbitrary_key(rng: &mut SmallRng) -> FlowKey {
    FlowKey::new(
        Addr::new(rng.gen::<u32>()),
        Addr::new(rng.gen::<u32>()),
        rng.gen::<u16>(),
        rng.gen::<u16>(),
    )
}

/// Hashed labels are a pure function of the key.
#[test]
fn flow_labels_are_deterministic() {
    let mut rng = case_rng(1);
    for _ in 0..CASES {
        let key = arbitrary_key(&mut rng);
        let a = FlowLabel::from_key(key, LabelMode::Hashed);
        let b = FlowLabel::from_key(key, LabelMode::Hashed);
        assert_eq!(a, b);
        assert_eq!(a.token(), b.token());
    }
}

/// Reversing a flow key twice is the identity.
#[test]
fn flow_key_reversal_involution() {
    let mut rng = case_rng(2);
    for _ in 0..CASES {
        let key = arbitrary_key(&mut rng);
        assert_eq!(key.reversed().reversed(), key);
    }
}

/// Interner ids round-trip to the original key, and re-interning the same
/// key always yields the same id.
#[test]
fn interner_ids_round_trip() {
    let mut rng = case_rng(3);
    let mut interner = FlowInterner::new();
    let mut minted = Vec::new();
    for _ in 0..CASES {
        let key = arbitrary_key(&mut rng);
        let id = interner.intern(key);
        assert_eq!(interner.resolve(id), key, "id must resolve to its key");
        assert_eq!(interner.intern(key), id, "re-interning must be stable");
        assert_eq!(interner.lookup(key), Some(id));
        minted.push((key, id));
    }
    // Earlier ids survive later interning (ids are stable for the run).
    for (key, id) in minted {
        assert_eq!(interner.resolve(id), key);
        // The label derived from the resolved key matches the label of the
        // original key — the FlowLabel edge contract.
        assert_eq!(
            FlowLabel::from_key(interner.resolve(id), LabelMode::Hashed),
            FlowLabel::from_key(key, LabelMode::Hashed),
        );
    }
}

/// LogLog merge is commutative: merge(a,b) == merge(b,a) on registers.
#[test]
fn loglog_merge_commutes() {
    let mut rng = case_rng(4);
    for _ in 0..20 {
        let mut a = LogLog::new(Precision::P8);
        let mut b = LogLog::new(Precision::P8);
        for _ in 0..rng.gen_range(0usize..500) {
            a.insert_u64(rng.gen::<u64>());
        }
        for _ in 0..rng.gen_range(0usize..500) {
            b.insert_u64(rng.gen::<u64>());
        }
        let ab = a.merged(&b).unwrap();
        let ba = b.merged(&a).unwrap();
        assert_eq!(ab.registers(), ba.registers());
    }
}

/// Merging can only grow (or keep) registers: the union dominates parts.
#[test]
fn loglog_union_dominates_parts() {
    let mut rng = case_rng(5);
    for _ in 0..20 {
        let mut a = LogLog::new(Precision::P8);
        let mut b = LogLog::new(Precision::P8);
        for _ in 0..rng.gen_range(1usize..500) {
            a.insert_u64(rng.gen::<u64>());
        }
        for _ in 0..rng.gen_range(1usize..500) {
            b.insert_u64(rng.gen::<u64>());
        }
        let union = a.merged(&b).unwrap();
        for (u, (x, y)) in union
            .registers()
            .iter()
            .zip(a.registers().iter().zip(b.registers().iter()))
        {
            assert!(u >= x && u >= y);
        }
    }
}

/// Duplicate insertions never change a LogLog's registers.
#[test]
fn loglog_idempotent_inserts() {
    let mut rng = case_rng(6);
    for _ in 0..20 {
        let items: Vec<u64> = (0..rng.gen_range(1usize..200))
            .map(|_| rng.gen::<u64>())
            .collect();
        let mut once = LogLog::new(Precision::P8);
        let mut thrice = LogLog::new(Precision::P8);
        for &x in &items {
            once.insert_u64(x);
        }
        for _ in 0..3 {
            for &x in &items {
                thrice.insert_u64(x);
            }
        }
        assert_eq!(once.registers(), thrice.registers());
    }
}

/// The MAFIC filter never drops packets for other destinations, no matter
/// the flow key or drop probability.
#[test]
fn mafic_filter_scope_invariant() {
    let victim = Addr::from_octets(10, 200, 0, 1);
    let mut rng = case_rng(7);
    for _ in 0..CASES {
        let key = arbitrary_key(&mut rng);
        if key.dst == victim {
            continue;
        }
        let pd = rng.gen::<f64>();
        let config = MaficConfig {
            drop_probability: pd,
            ..MaficConfig::default()
        };
        let mut filter = MaficFilter::new(config, AddressValidator::AllowAll);
        filter.activate(victim);
        let mut h = FilterHarness::new();
        let pkt = Packet {
            id: 1,
            key,
            kind: PacketKind::Udp,
            size_bytes: 100,
            created_at: SimTime::ZERO,
            provenance: Provenance::infrastructure(),
            hops: 0,
        };
        let fx = h.offer_transit(&mut filter, &pkt);
        assert_eq!(fx.action, Some(FilterAction::Forward));
    }
}

/// With Pd = 1 every first packet of a legal new flow is dropped and
/// probed; with Pd = 0 nothing is ever dropped.
#[test]
fn mafic_extreme_pd_behaviour() {
    let victim = Addr::from_octets(10, 200, 0, 1);
    let mut rng = case_rng(8);
    for _ in 0..CASES {
        let key = FlowKey {
            dst: victim,
            ..arbitrary_key(&mut rng)
        };
        for (pd, expect_drop) in [(1.0, true), (0.0, false)] {
            let config = MaficConfig {
                drop_probability: pd,
                ..MaficConfig::default()
            };
            let mut filter = MaficFilter::new(config, AddressValidator::AllowAll);
            filter.activate(victim);
            let mut h = FilterHarness::new();
            let pkt = Packet {
                id: 1,
                key,
                kind: PacketKind::Udp,
                size_bytes: 100,
                created_at: SimTime::ZERO,
                provenance: Provenance::infrastructure(),
                hops: 0,
            };
            let fx = h.offer_transit(&mut filter, &pkt);
            if expect_drop {
                assert_eq!(
                    fx.action,
                    Some(FilterAction::Drop(DropReason::FilterProbing))
                );
                assert_eq!(fx.emitted.len(), 1, "probe must be emitted");
            } else {
                assert_eq!(fx.action, Some(FilterAction::Forward));
                assert!(fx.emitted.is_empty());
            }
        }
    }
}

/// Address prefix membership is consistent with explicit masking.
#[test]
fn prefix_membership_matches_mask() {
    let mut rng = case_rng(9);
    for _ in 0..CASES {
        let addr = rng.gen::<u32>();
        let prefix = rng.gen::<u32>();
        let len = rng.gen_range(0u32..=32) as u8;
        let a = Addr::new(addr);
        let p = Addr::new(prefix);
        let expected = if len == 0 {
            true
        } else {
            let mask = u32::MAX << (32 - u32::from(len));
            (addr & mask) == (prefix & mask)
        };
        assert_eq!(a.in_prefix(p, len), expected);
    }
}

/// SimTime arithmetic: (t + d) - t == d for all representable pairs.
#[test]
fn time_addition_round_trips() {
    let mut rng = case_rng(10);
    for _ in 0..CASES {
        let t = rng.gen_range(0u64..u64::MAX / 4);
        let d = rng.gen_range(0u64..u64::MAX / 4);
        let time = SimTime::from_nanos(t);
        let dur = SimDuration::from_nanos(d);
        assert_eq!((time + dur) - time, dur);
    }
}
