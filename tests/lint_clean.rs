//! Tier-1 gate: the workspace determinism linter must pass on this
//! tree.
//!
//! This is the offline counterpart of the `lint-static` CI job — a
//! contributor who only runs `cargo test` still cannot land a wall
//! clock, a stdout leak in a library crate, a `partial_cmp` sort key,
//! an unsanctioned `unsafe`, or a crate-graph back-edge.

use mafic_lint::{lint_workspace, LintConfig};
use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root, &LintConfig::workspace()).expect("workspace walk succeeds");
    assert!(
        report.files_scanned > 50,
        "walker found only {} files — scope regressed",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "mafic-lint found violations:\n{}",
        report.render()
    );
}

#[test]
fn suppression_inventory_is_fully_used() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root, &LintConfig::workspace()).expect("workspace walk succeeds");
    for pragma in &report.pragmas {
        assert!(
            pragma.used,
            "unused pragma at {}:{} allow({})",
            pragma.path, pragma.line, pragma.rule
        );
    }
}
