//! Regenerates Fig. 11: closed-loop adaptive attack strategies against
//! the full defense. One strategy × trust-budget grid feeds everything —
//! the residual-attack surface (how much each adaptation buys over the
//! open-loop flood), the bystander panel (victim goodput beside the
//! distinct-source cardinality the subsidence guard watches), the
//! attacker's best response per budget, and the per-policy cost tables
//! with legitimate losses split by the tier that caused them.
//! Single-seed per cell: a closed feedback loop makes each trial a
//! different game, not a noisy sample of one.

use mafic_experiments::{figures, EngineConfig};

fn main() {
    let cfg = EngineConfig::from_env_or_exit();
    if let Err(e) = run(&cfg) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(cfg: &EngineConfig) -> Result<(), String> {
    let grid = figures::run_adaptive_adversary_grid(cfg)?;
    println!("{}", figures::fig11a_from_grid(&grid));
    println!("{}", figures::fig11b_from_grid(&grid));
    println!("{}", figures::fig11_best_response_summary(&grid));
    print!("{}", figures::fig11_cost_summary(&grid));
    Ok(())
}
