//! Fig. 7 bench: legitimate-packet dropping rate under the three drop
//! probabilities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mafic_bench::bench_spec;
use mafic_workload::{run_spec, ScenarioSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_collateral");
    group.sample_size(10);
    for pd in [0.7, 0.8, 0.9] {
        group.bench_with_input(BenchmarkId::new("lr_pd", pd), &pd, |b, &pd| {
            b.iter(|| {
                let outcome = run_spec(ScenarioSpec {
                    drop_probability: pd,
                    ..bench_spec()
                })
                .expect("run");
                assert!(outcome.report.legit_drop_pct < 25.0);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
