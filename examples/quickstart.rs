//! Quickstart: run the paper's default configuration (Table II) once and
//! print the five evaluation metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mafic_suite::workload::{run_spec, ScenarioSpec};

fn main() -> Result<(), mafic_suite::workload::WorkloadError> {
    // Table II defaults: Vt = 50 flows, Γ = 95% TCP, Pd = 90%,
    // N = 40 routers, attack starting at t = 1 s.
    let spec = ScenarioSpec::default();
    println!(
        "running default scenario: Vt={} flows, Γ={:.0}% TCP, Pd={:.0}%, N={} routers",
        spec.total_flows,
        spec.tcp_share * 100.0,
        spec.drop_probability * 100.0,
        spec.n_routers
    );

    let outcome = run_spec(spec)?;

    match outcome.triggered_at {
        Some(t) => println!(
            "pushback triggered at {t} — {} attack-transit routers instructed",
            outcome.atr_nodes.len()
        ),
        None => println!("pushback never triggered (no attack detected)"),
    }
    println!();
    println!("{}", outcome.report);
    println!();
    println!(
        "packets: {} sent, {} delivered; {} crossed the defense line",
        outcome.packets_sent,
        outcome.packets_delivered,
        outcome.report.attack_seen + outcome.report.legit_seen,
    );
    Ok(())
}
