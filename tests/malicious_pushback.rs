//! Acceptance tests for the trust-aware control plane under attack
//! (the Fig. 10 scenario): a compromised-but-authorized domain forging
//! escalation requests against the victim's legitimate traffic is
//! denied by attestation and measurably does not reduce legitimate
//! goodput — while the honest cascade on the same topology still
//! drives the residual attack rate monotonically down as the trust
//! budget admits it. The whole grid is deterministic at any engine
//! worker count.

use mafic_suite::experiments::engine::run_specs;
use mafic_suite::experiments::figures::{
    fig10_honest_spec, fig10_malicious_spec, trust_budget_axis,
};
use mafic_suite::workload::run_spec;

#[test]
fn malicious_pushback_is_denied_and_does_not_hurt_goodput() {
    let attacked = run_spec(fig10_malicious_spec(4, true)).expect("malicious scenario runs");
    // The forged requests were denied — by attestation, not identity:
    // the compromised provider *is* an authorized requester.
    assert!(
        attacked.control.denied_uncorroborated > 0,
        "attestation must deny the forged claims: {}",
        attacked.control
    );
    assert_eq!(
        attacked.control.installs_granted, 0,
        "no filter install may result from forged requests: {}",
        attacked.control
    );
    assert_eq!(attacked.max_pushback_depth, 0, "no defense ever activates");
    // And the victim's legitimate goodput is indistinguishable from the
    // same scenario without the attacker.
    let baseline_spec = mafic_suite::workload::ScenarioSpec {
        malicious_pushback: None,
        ..fig10_malicious_spec(4, true)
    };
    let baseline = run_spec(baseline_spec).expect("baseline runs");
    let loss = 1.0 - attacked.report.legit_goodput_bps / baseline.report.legit_goodput_bps;
    assert!(
        loss.abs() < 0.01,
        "denied malicious pushback must not move goodput: attacked {:.0} vs baseline {:.0}",
        attacked.report.legit_goodput_bps,
        baseline.report.legit_goodput_bps
    );
}

#[test]
fn unguarded_ledger_lets_malicious_pushback_do_harm() {
    // With attestation disabled (the unguarded legacy behaviour) the
    // same forged requests are believed, filters install against the
    // victim's legitimate aggregate, and goodput measurably drops —
    // the damage the trust ledger exists to prevent.
    let guarded = run_spec(fig10_malicious_spec(4, true)).expect("guarded runs");
    let unguarded = run_spec(fig10_malicious_spec(4, false)).expect("unguarded runs");
    assert!(
        unguarded.control.installs_granted >= 1,
        "{}",
        unguarded.control
    );
    assert!(
        unguarded.report.legit_goodput_bps < guarded.report.legit_goodput_bps,
        "a believed forgery must cost goodput: unguarded {:.0} vs guarded {:.0}",
        unguarded.report.legit_goodput_bps,
        guarded.report.legit_goodput_bps
    );
    assert!(
        unguarded.report.legit_drop_pct > guarded.report.legit_drop_pct,
        "legit drops must rise under the forged defense"
    );
}

#[test]
fn trust_budget_zero_denies_even_the_honest_cascade() {
    let outcome = run_spec(fig10_honest_spec(0)).expect("runs");
    assert!(outcome.defense_engaged());
    assert_eq!(
        outcome.max_pushback_depth, 0,
        "budget 0 keeps the defense in the victim domain"
    );
    assert!(outcome.control.denied_budget >= 1, "{}", outcome.control);
    assert_eq!(outcome.control.installs_granted, 0);
}

#[test]
fn honest_residual_is_monotone_non_increasing_in_trust_budget() {
    let mut last = f64::INFINITY;
    for &budget in &trust_budget_axis() {
        let outcome = run_spec(fig10_honest_spec(budget as u32)).expect("runs");
        let residual = outcome.report.residual_attack_bps;
        assert!(
            residual <= last + 1e-6,
            "residual rose from {last:.1} to {residual:.1} B/s at budget {budget}"
        );
        if budget as u32 >= 1 {
            assert!(
                outcome.max_pushback_depth >= 1,
                "a positive budget must admit the cascade at budget {budget}"
            );
            assert!(outcome.control.installs_granted >= 1);
        }
        last = residual;
    }
}

#[test]
fn fig10_grid_is_identical_at_one_and_four_workers() {
    let mut specs = Vec::new();
    for &budget in &trust_budget_axis() {
        specs.push(fig10_honest_spec(budget as u32));
        specs.push(fig10_malicious_spec(budget as u32, true));
        specs.push(fig10_malicious_spec(budget as u32, false));
    }
    let serial = run_specs(specs.clone(), 1).expect("serial grid");
    let parallel = run_specs(specs, 4).expect("parallel grid");
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.report, p.report);
        assert_eq!(s.control, p.control);
        assert_eq!(s.triggered_at, p.triggered_at);
        assert_eq!(s.stood_down_at, p.stood_down_at);
        assert_eq!(s.escalations, p.escalations);
        assert_eq!(s.packets_sent, p.packets_sent);
    }
}
