//! Table II bench: one full default-configuration run (the measurement
//! backing every "default" cell in the paper's tables).

use criterion::{criterion_group, criterion_main, Criterion};
use mafic_bench::bench_spec;
use mafic_workload::run_spec;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_ii_default_run");
    group.sample_size(10);
    group.bench_function("default_scenario", |b| {
        b.iter(|| run_spec(bench_spec()).expect("run"));
    });
    group.finish();
    // Print the values once so the bench log doubles as a record.
    let outcome = run_spec(bench_spec()).expect("run");
    println!("{}", outcome.report);
}

criterion_group!(benches, bench);
criterion_main!(benches);
