//! Regenerates Fig. 3(a) and Fig. 3(b): attack-packet dropping accuracy.

use mafic_experiments::{figures, trial_count};

fn main() {
    let trials = trial_count();
    for result in [figures::fig3a(trials), figures::fig3b(trials)] {
        match result {
            Ok(fig) => println!("{fig}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}
