//! Ablation benches: policy comparison, probe-timer multiplier, label
//! mode, and sketch precision — the design choices DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mafic::{DropPolicy, LabelMode};
use mafic_bench::bench_spec;
use mafic_loglog::{LogLog, Precision};
use mafic_workload::{run_spec, ScenarioSpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    for (name, policy) in [
        ("mafic", DropPolicy::Mafic),
        ("proportional", DropPolicy::Proportional),
    ] {
        group.bench_with_input(BenchmarkId::new("policy", name), &policy, |b, &policy| {
            b.iter(|| {
                run_spec(ScenarioSpec {
                    policy,
                    ..bench_spec()
                })
                .expect("run")
            });
        });
    }
    for mult in [1.0, 2.0, 4.0] {
        group.bench_with_input(BenchmarkId::new("timer_mult", mult), &mult, |b, &m| {
            b.iter(|| {
                run_spec(ScenarioSpec {
                    timer_rtt_multiplier: m,
                    ..bench_spec()
                })
                .expect("run")
            });
        });
    }
    for (name, mode) in [("hashed", LabelMode::Hashed), ("full", LabelMode::Full)] {
        group.bench_with_input(BenchmarkId::new("label_mode", name), &mode, |b, &mode| {
            b.iter(|| {
                run_spec(ScenarioSpec {
                    label_mode: mode,
                    ..bench_spec()
                })
                .expect("run")
            });
        });
    }
    for p in [Precision::P8, Precision::P10, Precision::P12] {
        group.bench_with_input(
            BenchmarkId::new("sketch_insert_50k", format!("2^{}", p.bits())),
            &p,
            |b, &p| {
                b.iter(|| {
                    let mut sketch = LogLog::new(p);
                    for i in 0u64..50_000 {
                        sketch.insert_u64(i);
                    }
                    sketch.estimate()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
