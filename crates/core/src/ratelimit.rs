//! The aggregate rate-limit policy — the cheapest transit-AS defense.
//!
//! A single token bucket caps the victim-bound *aggregate* byte rate:
//! no per-flow tables, no probes, no timers — O(1) state and O(1) work
//! per packet. It is deliberately crude (it cannot tell a zombie from a
//! compliant source inside the capped aggregate), which is exactly the
//! trade-off the heterogeneous-deployment experiments quantify against
//! full MAFIC and the proportional baseline.

use mafic_netsim::{
    Addr, DropReason, FilterAction, FilterControl, FilterCtx, Packet, PacketEnv, PacketFilter,
    SimTime, StatNote,
};
use std::any::Any;

/// How much burst the bucket tolerates, as seconds of the sustained
/// limit. 100 ms absorbs one monitor interval's worth of jitter without
/// letting a pulse through undiminished.
const BURST_SECONDS: f64 = 0.1;

/// Token-bucket rate limiter for victim-bound traffic.
///
/// Idle until a `PushbackStart` control message arrives (like every
/// defense filter). While active, a packet destined to the victim is
/// forwarded only if the bucket holds enough tokens for its size;
/// otherwise it is dropped with [`DropReason::FilterRateLimit`]. The
/// bucket refills continuously at the configured byte rate and holds at
/// most `BURST_SECONDS` worth of tokens. Refill arithmetic is plain
/// `f64` evaluated in a fixed order, so replays are bit-identical.
#[derive(Debug)]
pub struct RateLimitFilter {
    limit_bytes_per_sec: f64,
    burst_bytes: f64,
    tokens: f64,
    last_refill: SimTime,
    active: Option<Addr>,
    examined: u64,
    dropped: u64,
}

impl RateLimitFilter {
    /// Creates an inactive rate limiter admitting `limit_bytes_per_sec`
    /// of victim-bound traffic once activated.
    ///
    /// # Panics
    ///
    /// Panics if the limit is not finite and positive — a configuration
    /// bug (the workload layer validates specs before building).
    #[must_use]
    pub fn new(limit_bytes_per_sec: f64) -> Self {
        assert!(
            limit_bytes_per_sec.is_finite() && limit_bytes_per_sec > 0.0,
            "rate limit {limit_bytes_per_sec} must be finite and positive"
        );
        let burst_bytes = (limit_bytes_per_sec * BURST_SECONDS).max(1500.0);
        RateLimitFilter {
            limit_bytes_per_sec,
            burst_bytes,
            tokens: burst_bytes,
            last_refill: SimTime::ZERO,
            active: None,
            examined: 0,
            dropped: 0,
        }
    }

    /// True while a pushback request is in force.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }

    /// The sustained victim-bound byte rate admitted while active.
    #[must_use]
    pub fn limit_bytes_per_sec(&self) -> f64 {
        self.limit_bytes_per_sec
    }

    /// Packets examined while active.
    #[must_use]
    pub fn examined(&self) -> u64 {
        self.examined
    }

    /// Packets dropped by the bucket.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// State held by this filter, in bytes: the whole struct — one
    /// token bucket, no per-flow tables (the policy's selling point).
    #[must_use]
    pub fn approx_state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }

    /// Activates the defense for `victim` with a full bucket.
    pub fn activate(&mut self, victim: Addr, now: SimTime) {
        self.active = Some(victim);
        self.tokens = self.burst_bytes;
        self.last_refill = now;
    }

    /// Deactivates the defense.
    pub fn deactivate(&mut self) {
        self.active = None;
    }

    fn refill(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.last_refill).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.limit_bytes_per_sec).min(self.burst_bytes);
        self.last_refill = now;
    }
}

impl mafic_obs::StateHash for RateLimitFilter {
    fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        h.write_f64(self.limit_bytes_per_sec);
        h.write_f64(self.burst_bytes);
        h.write_f64(self.tokens);
        h.write_u64(self.last_refill.as_nanos());
        match self.active {
            None => h.write_u8(0),
            Some(victim) => {
                h.write_u8(1);
                h.write_u32(victim.as_u32());
            }
        }
        h.write_u64(self.examined);
        h.write_u64(self.dropped);
    }
}

impl PacketFilter for RateLimitFilter {
    fn on_packet(
        &mut self,
        packet: &Packet,
        _env: &PacketEnv,
        ctx: &mut FilterCtx<'_>,
    ) -> FilterAction {
        let Some(victim) = self.active else {
            return FilterAction::Forward;
        };
        if packet.key.dst != victim {
            return FilterAction::Forward;
        }
        self.examined += 1;
        ctx.note(StatNote::AtrSeen, Some(packet));
        self.refill(ctx.now());
        let size = f64::from(packet.size_bytes);
        if self.tokens >= size {
            self.tokens -= size;
            FilterAction::Forward
        } else {
            self.dropped += 1;
            FilterAction::Drop(DropReason::FilterRateLimit)
        }
    }

    fn on_control(&mut self, msg: &FilterControl, ctx: &mut FilterCtx<'_>) {
        match msg {
            FilterControl::PushbackStart { victim } => self.activate(*victim, ctx.now()),
            FilterControl::PushbackStop => self.deactivate(),
        }
    }

    fn snap_save(&self, w: &mut mafic_obs::SnapWriter) {
        w.write_f64(self.tokens);
        w.write_u64(self.last_refill.as_nanos());
        match self.active {
            None => w.write_u8(0),
            Some(victim) => {
                w.write_u8(1);
                w.write_u32(victim.as_u32());
            }
        }
        w.write_u64(self.examined);
        w.write_u64(self.dropped);
    }

    fn snap_restore(
        &mut self,
        r: &mut mafic_obs::SnapReader<'_>,
    ) -> Result<(), mafic_obs::SnapError> {
        self.tokens = r.read_f64()?;
        self.last_refill = SimTime::from_nanos(r.read_u64()?);
        self.active = match r.read_u8()? {
            0 => None,
            1 => Some(Addr::new(r.read_u32()?)),
            tag => {
                return Err(mafic_obs::SnapError::Malformed(format!(
                    "ratelimit-active tag {tag}"
                )))
            }
        };
        self.examined = r.read_u64()?;
        self.dropped = r.read_u64()?;
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mafic_netsim::testkit::FilterHarness;
    use mafic_netsim::{FlowKey, PacketKind, Provenance, SimDuration};

    const VICTIM: Addr = Addr::new(0x0AC8_0001);

    fn pkt(dst: Addr, size: u32) -> Packet {
        Packet {
            id: 1,
            key: FlowKey::new(Addr::from_octets(10, 1, 0, 1), dst, 5, 80),
            kind: PacketKind::Udp,
            size_bytes: size,
            created_at: SimTime::ZERO,
            provenance: Provenance::infrastructure(),
            hops: 0,
        }
    }

    #[test]
    fn inactive_filter_forwards_everything() {
        let mut h = FilterHarness::new();
        let mut f = RateLimitFilter::new(1000.0);
        let fx = h.offer_transit(&mut f, &pkt(VICTIM, 500));
        assert_eq!(fx.action, Some(FilterAction::Forward));
        assert_eq!(f.examined(), 0);
    }

    #[test]
    fn other_destinations_are_untouched() {
        let mut h = FilterHarness::new();
        let mut f = RateLimitFilter::new(1000.0);
        f.activate(VICTIM, h.now);
        let fx = h.offer_transit(&mut f, &pkt(Addr::new(9), 500));
        assert_eq!(fx.action, Some(FilterAction::Forward));
        assert_eq!(f.examined(), 0);
    }

    #[test]
    fn burst_passes_then_bucket_drops() {
        let mut h = FilterHarness::new();
        // 10 kB/s => burst clamps up to one MTU-and-a-half (1500 bytes).
        let mut f = RateLimitFilter::new(10_000.0);
        f.activate(VICTIM, h.now);
        // Three 500-byte packets drain the bucket; the fourth dies.
        for _ in 0..3 {
            let fx = h.offer_transit(&mut f, &pkt(VICTIM, 500));
            assert_eq!(fx.action, Some(FilterAction::Forward));
        }
        let fx = h.offer_transit(&mut f, &pkt(VICTIM, 500));
        assert_eq!(
            fx.action,
            Some(FilterAction::Drop(DropReason::FilterRateLimit))
        );
        assert_eq!(f.dropped(), 1);
        assert_eq!(f.examined(), 4);
    }

    #[test]
    fn tokens_refill_over_time() {
        let mut h = FilterHarness::new();
        let mut f = RateLimitFilter::new(10_000.0);
        f.activate(VICTIM, h.now);
        for _ in 0..3 {
            let _ = h.offer_transit(&mut f, &pkt(VICTIM, 500));
        }
        // Bucket empty. 50 ms at 10 kB/s refills 500 bytes.
        h.advance(SimDuration::from_millis(50));
        let fx = h.offer_transit(&mut f, &pkt(VICTIM, 500));
        assert_eq!(fx.action, Some(FilterAction::Forward));
        // Immediately after, the bucket is dry again.
        let fx = h.offer_transit(&mut f, &pkt(VICTIM, 500));
        assert_eq!(
            fx.action,
            Some(FilterAction::Drop(DropReason::FilterRateLimit))
        );
    }

    #[test]
    fn sustained_rate_approximates_the_limit() {
        let mut h = FilterHarness::new();
        // 50 kB/s against a 500 kB/s offered load of 500-byte packets.
        let mut f = RateLimitFilter::new(50_000.0);
        f.activate(VICTIM, h.now);
        let mut forwarded = 0u64;
        for _ in 0..1000 {
            if h.offer_transit(&mut f, &pkt(VICTIM, 500)).action == Some(FilterAction::Forward) {
                forwarded += 1;
            }
            h.advance(SimDuration::from_millis(1));
        }
        // 1 s of 50 kB/s admits ~100 packets of 500 B (+ the burst).
        assert!(
            (90..=220).contains(&forwarded),
            "expected ~100-200 forwarded, got {forwarded}"
        );
    }

    #[test]
    fn control_messages_toggle_and_refill() {
        let mut h = FilterHarness::new();
        let mut f = RateLimitFilter::new(10_000.0);
        let _ = h.control(&mut f, &FilterControl::PushbackStart { victim: VICTIM });
        assert!(f.is_active());
        for _ in 0..2 {
            let _ = h.offer_transit(&mut f, &pkt(VICTIM, 500));
        }
        let _ = h.control(&mut f, &FilterControl::PushbackStop);
        assert!(!f.is_active());
        // Re-activation starts with a full bucket.
        let _ = h.control(&mut f, &FilterControl::PushbackStart { victim: VICTIM });
        let fx = h.offer_transit(&mut f, &pkt(VICTIM, 500));
        assert_eq!(fx.action, Some(FilterAction::Forward));
    }

    #[test]
    #[should_panic(expected = "must be finite and positive")]
    fn zero_limit_is_rejected() {
        let _ = RateLimitFilter::new(0.0);
    }

    #[test]
    fn snapshot_round_trips_bucket_state() {
        let mut h = FilterHarness::new();
        let mut f = RateLimitFilter::new(10_000.0);
        f.activate(VICTIM, h.now);
        for _ in 0..2 {
            let _ = h.offer_transit(&mut f, &pkt(VICTIM, 500));
        }
        let mut w = mafic_obs::SnapWriter::new();
        f.snap_save(&mut w);
        let bytes = w.into_bytes();

        let mut g = RateLimitFilter::new(10_000.0);
        let mut r = mafic_obs::SnapReader::new(&bytes);
        g.snap_restore(&mut r).expect("restore");
        assert!(r.is_empty());
        assert!(g.is_active());
        assert_eq!(g.examined(), 2);
        // The drained bucket carries over: a third packet still passes
        // (500 B left of the 1500 B burst), the fourth dies — identical
        // verdicts from the original and the restored filter.
        for _ in 0..2 {
            let fx = h.offer_transit(&mut f, &pkt(VICTIM, 500));
            let mut h2 = FilterHarness::new();
            h2.advance(h.now.saturating_since(SimTime::ZERO));
            let gx = h2.offer_transit(&mut g, &pkt(VICTIM, 500));
            assert_eq!(fx.action, gx.action);
        }
    }
}
