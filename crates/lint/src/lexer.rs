//! A token-level Rust lexer for the determinism linter.
//!
//! The rule engine must never fire inside string literals or comments —
//! a doc comment mentioning `Instant` or a fixture string containing
//! `println!` is not a violation. A regex over raw source cannot make
//! that distinction reliably (raw strings may contain `"`, block
//! comments nest, `'a` is a lifetime while `'x'` is a char literal), so
//! the linter lexes every file into a token stream first and lets each
//! rule pick the token kinds it cares about.
//!
//! The lexer is deliberately lossless about position (every token
//! carries its 1-based start line) and deliberately lossy about
//! anything rules do not need: numeric suffixes, operator composition
//! (`::` arrives as two `:` puncts), and keyword-vs-identifier
//! distinctions are all left to the rule layer.

/// The kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `println`, `std`, ...).
    Ident,
    /// String literal of any flavor: `"..."`, `r#"..."#`, `b"..."`,
    /// `c"..."`. The token text includes the quotes and any prefix.
    Str,
    /// Character or byte literal: `'x'`, `'\n'`, `b'q'`.
    Char,
    /// Lifetime or loop label: `'a`, `'static`, `'outer`.
    Lifetime,
    /// Numeric literal (integers and floats, suffixes included).
    Number,
    /// A single punctuation character (`:`, `!`, `{`, ...).
    Punct,
    /// Line comment (`// ...`), text includes the `//`.
    LineComment,
    /// Block comment (`/* ... */`, nesting honored), text included.
    BlockComment,
}

/// One lexed token: kind, verbatim text, and 1-based start line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The verbatim source text of the token.
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
}

impl Token {
    /// True for the comment kinds.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// True for tokens that are executable code (not comments, not
    /// string/char literal *content*). String literals themselves are
    /// excluded here; rules that inspect format strings ask for
    /// [`TokenKind::Str`] explicitly.
    #[must_use]
    pub fn is_code(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Ident | TokenKind::Number | TokenKind::Punct
        )
    }
}

/// Lex `source` into a flat token stream.
///
/// The lexer never fails: unexpected bytes become single-character
/// [`TokenKind::Punct`] tokens, and an unterminated string or block
/// comment swallows the rest of the file as that token (the compiler
/// will reject such a file anyway; the linter's job is merely to avoid
/// misclassifying the remainder).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn lex(source: &str) -> Vec<Token> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Number of consecutive `#` characters starting at `bytes[at]`.
    fn count_hashes(bytes: &[u8], at: usize) -> usize {
        let mut n = 0;
        while at + n < bytes.len() && bytes[at + n] == b'#' {
            n += 1;
        }
        n
    }

    // Is `word` a raw/byte/C string literal prefix?
    fn is_str_prefix(word: &str) -> bool {
        matches!(word, "r" | "b" | "br" | "rb" | "c" | "cr" | "rc")
    }

    while i < bytes.len() {
        let start = i;
        let start_line = line;
        let ch = bytes[i];

        // Whitespace.
        if ch.is_ascii_whitespace() {
            if ch == b'\n' {
                line += 1;
            }
            i += 1;
            continue;
        }

        // Comments.
        if ch == b'/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::LineComment,
                    text: source[start..i].to_string(),
                    line: start_line,
                });
                continue;
            }
            if bytes[i + 1] == b'*' {
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::BlockComment,
                    text: source[start..i].to_string(),
                    line: start_line,
                });
                continue;
            }
        }

        // Plain string literal.
        if ch == b'"' {
            i += 1;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            tokens.push(Token {
                kind: TokenKind::Str,
                text: source[start..i.min(bytes.len())].to_string(),
                line: start_line,
            });
            continue;
        }

        // Lifetime vs char literal.
        if ch == b'\'' {
            let next = bytes.get(i + 1).copied();
            let after = bytes.get(i + 2).copied();
            let next_is_name = next.is_some_and(|c| c.is_ascii_alphabetic() || c == b'_');
            // `'a` / `'static` (not followed by a closing quote) is a
            // lifetime; `'x'` is a char literal. `'\n'` starts with a
            // backslash, so it is never mistaken for a lifetime.
            if next_is_name && after != Some(b'\'') {
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: source[start..i].to_string(),
                    line: start_line,
                });
                continue;
            }
            // Char literal (possibly escaped, possibly `'\u{1F600}'`).
            i += 1;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'\'' => {
                        i += 1;
                        break;
                    }
                    b'\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            tokens.push(Token {
                kind: TokenKind::Char,
                text: source[start..i.min(bytes.len())].to_string(),
                line: start_line,
            });
            continue;
        }

        // Identifier, keyword, or prefixed string literal.
        if ch.is_ascii_alphabetic() || ch == b'_' {
            let mut j = i;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            let word = &source[i..j];

            // Raw / byte / C string literal (`r"..."`, `br#"..."#`, ...).
            if is_str_prefix(word) && j < bytes.len() {
                let hashes = count_hashes(bytes, j);
                let quote_at = j + hashes;
                if quote_at < bytes.len() && bytes[quote_at] == b'"' {
                    if hashes > 0 || word.contains('r') {
                        // Raw string: ends at `"` followed by `hashes` hashes.
                        i = quote_at + 1;
                        loop {
                            if i >= bytes.len() {
                                break;
                            }
                            if bytes[i] == b'\n' {
                                line += 1;
                                i += 1;
                                continue;
                            }
                            if bytes[i] == b'"' && count_hashes(bytes, i + 1) >= hashes {
                                i += 1 + hashes;
                                break;
                            }
                            i += 1;
                        }
                        tokens.push(Token {
                            kind: TokenKind::Str,
                            text: source[start..i.min(bytes.len())].to_string(),
                            line: start_line,
                        });
                        continue;
                    }
                    // `b"..."` / `c"..."`: escaped string body.
                    i = quote_at + 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'"' => {
                                i += 1;
                                break;
                            }
                            b'\n' => {
                                line += 1;
                                i += 1;
                            }
                            _ => i += 1,
                        }
                    }
                    tokens.push(Token {
                        kind: TokenKind::Str,
                        text: source[start..i.min(bytes.len())].to_string(),
                        line: start_line,
                    });
                    continue;
                }
            }
            // Byte char literal `b'q'`.
            if word == "b" && j < bytes.len() && bytes[j] == b'\'' {
                i = j + 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Char,
                    text: source[start..i.min(bytes.len())].to_string(),
                    line: start_line,
                });
                continue;
            }

            i = j;
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: word.to_string(),
                line: start_line,
            });
            continue;
        }

        // Numeric literal (loose: digits plus alphanumerics, `_`, and
        // a decimal point — suffixes and bases ride along).
        if ch.is_ascii_digit() {
            let mut j = i;
            while j < bytes.len()
                && (bytes[j].is_ascii_alphanumeric()
                    || bytes[j] == b'_'
                    || (bytes[j] == b'.' && j + 1 < bytes.len() && bytes[j + 1].is_ascii_digit()))
            {
                j += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Number,
                text: source[i..j].to_string(),
                line: start_line,
            });
            i = j;
            continue;
        }

        // Everything else: one punct per character.
        // (Multi-byte UTF-8 inside code is rare; emit the full scalar.)
        let char_len = source[i..].chars().next().map_or(1, char::len_utf8);
        tokens.push(Token {
            kind: TokenKind::Punct,
            text: source[i..i + char_len].to_string(),
            line: start_line,
        });
        i += char_len;
    }

    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn raw_string_with_quotes_and_macro() {
        let src = "let s = r#\"println!(\"x\")\"#;";
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("println")));
        // The `println` inside the raw string must NOT surface as an
        // identifier token.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "println"));
    }

    #[test]
    fn nested_block_comment_is_one_token() {
        let src = "/* outer /* inner */ still outer */ fn x() {}";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert!(toks[0].1.contains("inner"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "fn"));
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "two 'a lifetimes");
        assert_eq!(chars.len(), 2, "'x' and '\\n' char literals");
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\"two\nline\"\nc");
        let a = toks.iter().find(|t| t.text == "a").unwrap();
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        let c = toks.iter().find(|t| t.text == "c").unwrap();
        assert_eq!((a.line, b.line), (1, 2));
        assert_eq!(c.line, 5, "multi-line string advanced the counter");
    }

    #[test]
    fn byte_and_c_strings_are_strings() {
        let toks = kinds("let a = b\"bytes\"; let c = c\"cstr\"; let r = br#\"raw\"#;");
        let strs = toks.iter().filter(|(k, _)| *k == TokenKind::Str).count();
        assert_eq!(strs, 3);
    }

    #[test]
    fn unterminated_string_swallows_tail_without_panic() {
        let toks = lex("let s = \"never closed");
        assert_eq!(toks.last().unwrap().kind, TokenKind::Str);
    }
}
