//! Deployment-cost proxies for heterogeneous defense policies.
//!
//! The partial-deployment experiments trade suppression against what a
//! policy *costs the router that runs it*. Two observable proxies come
//! straight out of the filters after a run: resident table state
//! (bytes) and per-flow timer events armed on the wheel. Full MAFIC
//! pays for both; the proportional baseline keeps only drop
//! diagnostics; the aggregate rate limit is O(1); non-participating
//! domains pay nothing (and stop nothing).

use std::fmt;

/// Aggregated cost proxies for every domain running one policy.
///
/// Built by the workload runner after a run: filters are grouped by
/// their policy label and their state/timer counters summed, so a
/// heterogeneous scenario yields one row per distinct policy (sorted by
/// label for deterministic output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyCostReport {
    /// Stable policy label (`mafic`, `proportional`, `rate-limit`).
    pub policy: String,
    /// Number of domains that deployed this policy.
    pub domains: usize,
    /// Defense filters installed across those domains' ATRs.
    pub filters: usize,
    /// Per-flow table state across those filters, bytes (approximate;
    /// **peak** occupancy for policies whose tables flush on stand-down,
    /// so a withdrawn defense still reports what it cost while active).
    pub table_bytes: u64,
    /// Per-flow wheel timers armed across those filters (probation
    /// deadlines, NFT re-validations). Zero for stateless policies.
    pub timer_events: u64,
    /// Probe bursts emitted (full MAFIC only).
    pub probes_sent: u64,
    /// Legitimate packets this policy's own filters dropped — the
    /// collateral *harm* the policy causes, split from the state it
    /// costs. For `mafic` this is probing + permanent-table + illegal
    /// drops of legit flows; for `proportional` the proportional drops;
    /// for `rate-limit` the bucket drops.
    pub legit_drops_filtered: u64,
    /// Legitimate packets lost to queue overflow across the whole run
    /// — shared context, identical on every row: queue losses happen at
    /// the links, not in any policy's filter, but a cost table without
    /// them understates what the attack (and the defense's failure to
    /// cut it) did to legitimate traffic.
    pub legit_drops_queue: u64,
}

impl fmt::Display for PolicyCostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {:>3} domains {:>4} filters {:>10} table bytes {:>8} timers {:>8} probes \
             {:>8} legit drops ({:>6} queue)",
            self.policy,
            self.domains,
            self.filters,
            self.table_bytes,
            self.timer_events,
            self.probes_sent,
            self.legit_drops_filtered,
            self.legit_drops_queue
        )
    }
}

/// Renders a cost table (one [`PolicyCostReport`] per line) with a
/// header, for the figure binaries.
#[must_use]
pub fn cost_table(title: &str, costs: &[PolicyCostReport]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if costs.is_empty() {
        out.push_str("  (no defense filters installed)\n");
        return out;
    }
    for c in costs {
        out.push_str("  ");
        out.push_str(&c.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> PolicyCostReport {
        PolicyCostReport {
            policy: "mafic".to_string(),
            domains: 3,
            filters: 12,
            table_bytes: 4096,
            timer_events: 77,
            probes_sent: 70,
            legit_drops_filtered: 41,
            legit_drops_queue: 13,
        }
    }

    #[test]
    fn display_names_every_proxy() {
        let text = report().to_string();
        for needle in [
            "mafic",
            "3 domains",
            "12 filters",
            "4096",
            "77",
            "70",
            "41 legit drops",
            "13 queue",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }

    #[test]
    fn table_includes_title_and_rows() {
        let table = cost_table("Policy costs", &[report()]);
        assert!(table.starts_with("Policy costs\n"));
        assert!(table.contains("mafic"));
        let empty = cost_table("Policy costs", &[]);
        assert!(empty.contains("no defense filters"));
    }
}
