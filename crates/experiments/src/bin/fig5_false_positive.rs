//! Regenerates Fig. 5(a)–(c): false positive rates.

use mafic_experiments::{figures, EngineConfig};

fn main() {
    let cfg = EngineConfig::from_env_or_exit();
    for result in [
        figures::fig5a(&cfg),
        figures::fig5b(&cfg),
        figures::fig5c(&cfg),
    ] {
        match result {
            Ok(fig) => println!("{fig}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}
