//! # mafic-workload
//!
//! Scenario generation and execution for the MAFIC reproduction: builds
//! the protected domain, provisions legitimate TCP flows and spoofing
//! attack zombies per the paper's parameter surface (`Vt`, `Γ`, `R`,
//! `Pd`, `N`), installs the LogLog taps and the defense filters, and
//! runs the periodic pushback monitor that turns sketch epochs into
//! `PushbackStart` control messages.
//!
//! # Example
//!
//! ```no_run
//! use mafic_workload::{run_spec, ScenarioSpec};
//!
//! let outcome = run_spec(ScenarioSpec::default()).unwrap();
//! println!("{}", outcome.report);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runner;
pub mod scenario;
pub mod spec;

pub use runner::{run_scenario, run_spec, RunOutcome};
pub use scenario::{FlowInfo, Scenario, SpoofMode};
pub use spec::{DetectionMode, NominalRate, ScenarioSpec};
