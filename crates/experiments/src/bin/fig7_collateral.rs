//! Regenerates Fig. 7: legitimate-packet dropping rate.

use mafic_experiments::{figures, trial_count};

fn main() {
    match figures::fig7(trial_count()) {
        Ok(fig) => println!("{fig}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
