//! The three MAFIC flow tables.
//!
//! * **SFT** — Suspicious Flow Table: flows under probation. Each entry
//!   remembers when the probe started, the pre-probe baseline rate, the
//!   flow's RTT estimate, and the 2×RTT decision deadline.
//! * **NFT** — Nice Flow Table: flows that reduced their rate after the
//!   probe; never dropped again.
//! * **PDT** — Permanently Drop Table: flows whose rate did not respond,
//!   plus flows with illegal source addresses; every packet dropped.
//!
//! All tables are capacity-bounded with FIFO eviction, matching a
//! router's fixed memory budget.

use crate::label::FlowLabel;
use mafic_netsim::{FlowKey, SimTime};
use std::collections::{HashMap, VecDeque};

/// Why a flow ended up in the PDT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PdtReason {
    /// The claimed source address is outside every allocated prefix.
    IllegalSource,
    /// The flow failed the probe test (rate did not decrease).
    Unresponsive,
}

/// One probation entry in the SFT.
#[derive(Debug, Clone, PartialEq)]
pub struct SftEntry {
    /// The flow's 4-tuple at insertion time (kept for probe addressing
    /// and statistics; the table key itself may be the hashed label).
    pub key: FlowKey,
    /// When the probe was issued.
    pub probe_started: SimTime,
    /// Arrival rate (packets/s) measured just before the probe.
    pub baseline_rate: f64,
    /// The flow RTT estimate used for the timer.
    pub rtt_estimate: mafic_netsim::SimDuration,
    /// The decision deadline (`probe_started + mult × RTT`).
    pub deadline: SimTime,
    /// Packets seen since the probe started.
    pub arrivals_since_probe: u64,
}

/// A capacity-bounded map with FIFO eviction.
#[derive(Debug)]
struct BoundedMap<V> {
    map: HashMap<FlowLabel, V>,
    order: VecDeque<FlowLabel>,
    capacity: usize,
    evictions: u64,
}

impl<V> BoundedMap<V> {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "table capacity must be positive");
        BoundedMap {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            evictions: 0,
        }
    }

    fn insert(&mut self, label: FlowLabel, value: V) -> Option<V> {
        if let std::collections::hash_map::Entry::Occupied(mut slot) = self.map.entry(label) {
            return Some(slot.insert(value));
        }
        if self.map.len() >= self.capacity {
            // FIFO eviction; skip stale order entries.
            while let Some(old) = self.order.pop_front() {
                if self.map.remove(&old).is_some() {
                    self.evictions += 1;
                    break;
                }
            }
        }
        self.order.push_back(label);
        self.map.insert(label, value)
    }

    fn get(&self, label: &FlowLabel) -> Option<&V> {
        self.map.get(label)
    }

    fn get_mut(&mut self, label: &FlowLabel) -> Option<&mut V> {
        self.map.get_mut(label)
    }

    fn remove(&mut self, label: &FlowLabel) -> Option<V> {
        self.map.remove(label)
    }

    fn contains(&self, label: &FlowLabel) -> bool {
        self.map.contains_key(label)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

/// The complete MAFIC table set.
#[derive(Debug)]
pub struct FlowTables {
    sft: BoundedMap<SftEntry>,
    nft: BoundedMap<()>,
    pdt: BoundedMap<PdtReason>,
}

impl FlowTables {
    /// Creates tables with the given per-table capacities.
    ///
    /// # Panics
    ///
    /// Panics if any capacity is zero.
    #[must_use]
    pub fn new(sft_capacity: usize, nft_capacity: usize, pdt_capacity: usize) -> Self {
        FlowTables {
            sft: BoundedMap::new(sft_capacity),
            nft: BoundedMap::new(nft_capacity),
            pdt: BoundedMap::new(pdt_capacity),
        }
    }

    // --- SFT ---------------------------------------------------------

    /// Inserts a probation entry.
    pub fn sft_insert(&mut self, label: FlowLabel, entry: SftEntry) {
        self.sft.insert(label, entry);
    }

    /// The probation entry for `label`, if any.
    #[must_use]
    pub fn sft_get(&self, label: &FlowLabel) -> Option<&SftEntry> {
        self.sft.get(label)
    }

    /// Mutable probation entry.
    pub fn sft_get_mut(&mut self, label: &FlowLabel) -> Option<&mut SftEntry> {
        self.sft.get_mut(label)
    }

    /// Removes and returns the probation entry.
    pub fn sft_remove(&mut self, label: &FlowLabel) -> Option<SftEntry> {
        self.sft.remove(label)
    }

    /// Number of flows on probation.
    #[must_use]
    pub fn sft_len(&self) -> usize {
        self.sft.len()
    }

    // --- NFT ---------------------------------------------------------

    /// Marks a flow as nice.
    pub fn nft_insert(&mut self, label: FlowLabel) {
        self.nft.insert(label, ());
    }

    /// True if the flow passed the probe test.
    #[must_use]
    pub fn nft_contains(&self, label: &FlowLabel) -> bool {
        self.nft.contains(label)
    }

    /// Number of nice flows.
    #[must_use]
    pub fn nft_len(&self) -> usize {
        self.nft.len()
    }

    /// Removes a flow from the NFT (re-validation); returns whether it
    /// was present.
    pub fn nft_remove(&mut self, label: &FlowLabel) -> bool {
        self.nft.remove(label).is_some()
    }

    // --- PDT ---------------------------------------------------------

    /// Condemns a flow.
    pub fn pdt_insert(&mut self, label: FlowLabel, reason: PdtReason) {
        self.pdt.insert(label, reason);
    }

    /// The condemnation reason, if the flow is in the PDT.
    #[must_use]
    pub fn pdt_get(&self, label: &FlowLabel) -> Option<PdtReason> {
        self.pdt.get(label).copied()
    }

    /// True if every packet of this flow must be dropped.
    #[must_use]
    pub fn pdt_contains(&self, label: &FlowLabel) -> bool {
        self.pdt.contains(label)
    }

    /// Number of condemned flows.
    #[must_use]
    pub fn pdt_len(&self) -> usize {
        self.pdt.len()
    }

    // --- Global ------------------------------------------------------

    /// Flushes all three tables (pushback end — "End dropping & Flush all
    /// tables" in Figure 2).
    pub fn flush(&mut self) {
        self.sft.clear();
        self.nft.clear();
        self.pdt.clear();
    }

    /// Total evictions across the tables (capacity-pressure diagnostics).
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.sft.evictions + self.nft.evictions + self.pdt.evictions
    }

    /// Approximate resident memory of the three tables in bytes, using
    /// the label storage cost (the paper's motivation for hashing).
    #[must_use]
    pub fn approx_bytes(&self, label_bytes: usize) -> usize {
        let sft_entry = label_bytes + std::mem::size_of::<SftEntry>();
        let nft_entry = label_bytes;
        let pdt_entry = label_bytes + 1;
        self.sft.len() * sft_entry + self.nft.len() * nft_entry + self.pdt.len() * pdt_entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelMode;
    use mafic_netsim::{Addr, SimDuration};

    fn label(n: u16) -> FlowLabel {
        FlowLabel::from_key(
            FlowKey::new(Addr::new(1), Addr::new(2), n, 80),
            LabelMode::Hashed,
        )
    }

    fn entry() -> SftEntry {
        SftEntry {
            key: FlowKey::new(Addr::new(1), Addr::new(2), 1, 80),
            probe_started: SimTime::ZERO,
            baseline_rate: 100.0,
            rtt_estimate: SimDuration::from_millis(50),
            deadline: SimTime::ZERO + SimDuration::from_millis(100),
            arrivals_since_probe: 0,
        }
    }

    #[test]
    fn tables_start_empty() {
        let t = FlowTables::new(4, 4, 4);
        assert_eq!(t.sft_len(), 0);
        assert_eq!(t.nft_len(), 0);
        assert_eq!(t.pdt_len(), 0);
        assert_eq!(t.evictions(), 0);
    }

    #[test]
    fn sft_round_trip() {
        let mut t = FlowTables::new(4, 4, 4);
        t.sft_insert(label(1), entry());
        assert!(t.sft_get(&label(1)).is_some());
        t.sft_get_mut(&label(1)).unwrap().arrivals_since_probe = 5;
        assert_eq!(t.sft_get(&label(1)).unwrap().arrivals_since_probe, 5);
        let removed = t.sft_remove(&label(1)).unwrap();
        assert_eq!(removed.arrivals_since_probe, 5);
        assert_eq!(t.sft_len(), 0);
    }

    #[test]
    fn nft_and_pdt_membership() {
        let mut t = FlowTables::new(4, 4, 4);
        t.nft_insert(label(1));
        t.pdt_insert(label(2), PdtReason::Unresponsive);
        t.pdt_insert(label(3), PdtReason::IllegalSource);
        assert!(t.nft_contains(&label(1)));
        assert!(!t.nft_contains(&label(2)));
        assert_eq!(t.pdt_get(&label(2)), Some(PdtReason::Unresponsive));
        assert_eq!(t.pdt_get(&label(3)), Some(PdtReason::IllegalSource));
        assert!(!t.pdt_contains(&label(1)));
    }

    #[test]
    fn capacity_evicts_fifo() {
        let mut t = FlowTables::new(4, 4, 2);
        t.pdt_insert(label(1), PdtReason::Unresponsive);
        t.pdt_insert(label(2), PdtReason::Unresponsive);
        t.pdt_insert(label(3), PdtReason::Unresponsive);
        assert_eq!(t.pdt_len(), 2);
        assert!(!t.pdt_contains(&label(1)), "oldest evicted first");
        assert!(t.pdt_contains(&label(2)));
        assert!(t.pdt_contains(&label(3)));
        assert_eq!(t.evictions(), 1);
    }

    #[test]
    fn reinsertion_does_not_evict() {
        let mut t = FlowTables::new(4, 4, 2);
        t.pdt_insert(label(1), PdtReason::Unresponsive);
        t.pdt_insert(label(1), PdtReason::IllegalSource);
        assert_eq!(t.pdt_len(), 1);
        assert_eq!(t.pdt_get(&label(1)), Some(PdtReason::IllegalSource));
        assert_eq!(t.evictions(), 0);
    }

    #[test]
    fn flush_empties_everything() {
        let mut t = FlowTables::new(4, 4, 4);
        t.sft_insert(label(1), entry());
        t.nft_insert(label(2));
        t.pdt_insert(label(3), PdtReason::Unresponsive);
        t.flush();
        assert_eq!(t.sft_len() + t.nft_len() + t.pdt_len(), 0);
    }

    #[test]
    fn hashed_labels_cost_less_memory() {
        let mut t = FlowTables::new(64, 64, 64);
        for n in 0..10u16 {
            t.nft_insert(label(n));
        }
        assert!(t.approx_bytes(8) < t.approx_bytes(12));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = FlowTables::new(0, 1, 1);
    }
}
