//! The domain address plan.
//!
//! Each ingress router owns a /16 prefix; hosts behind it draw addresses
//! from that prefix, and the victim network owns its own /16. The plan is
//! what gives "illegal / unreachable source address" a precise meaning:
//! an address outside every allocated prefix. MAFIC sends such packets
//! straight to the Permanently Drop Table.

use mafic_netsim::Addr;
use rand::Rng;

/// Prefix length used for every allocated network.
pub const PREFIX_LEN: u8 = 16;

/// The allocation of address prefixes within the protected domain.
///
/// # Example
///
/// ```
/// use mafic_topology::AddressSpace;
///
/// let space = AddressSpace::new(4);
/// let host = space.host_addr(0, 1);
/// assert!(space.is_legal(host));
/// assert!(space.is_legal(space.victim_addr()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressSpace {
    base_octet: u8,
    ingress_prefixes: Vec<Addr>,
    victim_prefix: Addr,
}

impl AddressSpace {
    /// Creates a plan with one /16 per ingress router under the default
    /// `10.0.0.0/8`-style base.
    ///
    /// # Panics
    ///
    /// Panics if `n_ingress` exceeds 180 (the 10.1.0.0 … 10.180.0.0 pool).
    #[must_use]
    pub fn new(n_ingress: usize) -> Self {
        AddressSpace::with_base(10, n_ingress)
    }

    /// Creates a plan rooted at `base_octet.0.0.0`: ingress `i` owns
    /// `base.(i+1).0.0/16` and the victim network owns `base.200.0.0/16`.
    ///
    /// Multi-domain topologies give every domain its own base octet so
    /// the per-domain plans never overlap (and `192.x` stays reserved
    /// for guaranteed-illegal spoofed sources).
    ///
    /// # Panics
    ///
    /// Panics if `n_ingress` exceeds 180, or if `base_octet` is 0 or 192
    /// (reserved for the unspecified address and illegal spoofs).
    #[must_use]
    pub fn with_base(base_octet: u8, n_ingress: usize) -> Self {
        assert!(
            n_ingress <= 180,
            "address pool supports at most 180 ingresses"
        );
        assert!(
            base_octet != 0 && base_octet != 192,
            "base octet {base_octet} is reserved"
        );
        let ingress_prefixes = (0..n_ingress)
            .map(|i| Addr::from_octets(base_octet, (i + 1) as u8, 0, 0))
            .collect();
        AddressSpace {
            base_octet,
            ingress_prefixes,
            victim_prefix: Addr::from_octets(base_octet, 200, 0, 0),
        }
    }

    /// The base octet this plan is rooted at.
    #[must_use]
    pub fn base_octet(&self) -> u8 {
        self.base_octet
    }

    /// Number of ingress prefixes.
    #[must_use]
    pub fn ingress_count(&self) -> usize {
        self.ingress_prefixes.len()
    }

    /// The prefix owned by ingress `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn ingress_prefix(&self, i: usize) -> Addr {
        self.ingress_prefixes[i]
    }

    /// Address of host `h` behind ingress `i` (h starts at 1).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `h` does not fit the /16.
    #[must_use]
    pub fn host_addr(&self, i: usize, h: u32) -> Addr {
        assert!(h > 0 && h < (1 << 16), "host index {h} out of /16 range");
        Addr::new(self.ingress_prefixes[i].as_u32() | h)
    }

    /// The victim network prefix.
    #[must_use]
    pub fn victim_prefix(&self) -> Addr {
        self.victim_prefix
    }

    /// The victim host address.
    #[must_use]
    pub fn victim_addr(&self) -> Addr {
        Addr::new(self.victim_prefix.as_u32() | 1)
    }

    /// True if `addr` belongs to an allocated prefix ("legitimate" in the
    /// paper's sense — a valid address of some subnet, not necessarily the
    /// true sender).
    #[must_use]
    pub fn is_legal(&self, addr: Addr) -> bool {
        addr.in_prefix(self.victim_prefix, PREFIX_LEN)
            || self
                .ingress_prefixes
                .iter()
                .any(|&p| addr.in_prefix(p, PREFIX_LEN))
    }

    /// Draws an address guaranteed to be outside every allocated prefix
    /// (for illegal-source spoofing).
    pub fn random_illegal(&self, rng: &mut impl Rng) -> Addr {
        // 192.168.0.0/16 is never allocated by this plan.
        let addr = Addr::from_octets(192, 168, rng.gen(), rng.gen());
        debug_assert!(!self.is_legal(addr));
        addr
    }

    /// Draws a *legal* address from some ingress prefix other than
    /// `avoid` (for "legitimately spoofed" sources). Returns `None` when
    /// only one prefix exists.
    pub fn random_legal_spoof(&self, avoid: usize, rng: &mut impl Rng) -> Option<Addr> {
        if self.ingress_prefixes.len() < 2 {
            return None;
        }
        let mut i = rng.gen_range(0..self.ingress_prefixes.len());
        if i == avoid {
            i = (i + 1) % self.ingress_prefixes.len();
        }
        // High host numbers avoid colliding with genuinely attached hosts.
        let h = rng.gen_range(0x8000u32..0xFFFF);
        Some(Addr::new(self.ingress_prefixes[i].as_u32() | h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn host_addresses_fall_in_their_prefix() {
        let space = AddressSpace::new(3);
        for i in 0..3 {
            let a = space.host_addr(i, 7);
            assert!(a.in_prefix(space.ingress_prefix(i), PREFIX_LEN));
            assert!(space.is_legal(a));
        }
    }

    #[test]
    fn victim_addr_is_legal_and_distinct() {
        let space = AddressSpace::new(3);
        assert!(space.is_legal(space.victim_addr()));
        for i in 0..3 {
            assert!(!space
                .victim_addr()
                .in_prefix(space.ingress_prefix(i), PREFIX_LEN));
        }
    }

    #[test]
    fn illegal_addresses_never_validate() {
        let space = AddressSpace::new(5);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!space.is_legal(space.random_illegal(&mut rng)));
        }
    }

    #[test]
    fn legal_spoofs_avoid_the_caller_prefix() {
        let space = AddressSpace::new(4);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            let a = space.random_legal_spoof(2, &mut rng).unwrap();
            assert!(space.is_legal(a));
            assert!(!a.in_prefix(space.ingress_prefix(2), PREFIX_LEN));
        }
    }

    #[test]
    fn single_prefix_cannot_spoof_legally() {
        let space = AddressSpace::new(1);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(space.random_legal_spoof(0, &mut rng).is_none());
    }

    #[test]
    #[should_panic(expected = "at most 180")]
    fn too_many_ingresses_rejected() {
        let _ = AddressSpace::new(200);
    }

    #[test]
    fn distinct_bases_never_overlap() {
        let a = AddressSpace::with_base(10, 4);
        let b = AddressSpace::with_base(11, 4);
        assert_eq!(a.base_octet(), 10);
        for i in 0..4 {
            assert!(!b.is_legal(a.host_addr(i, 1)));
            assert!(!a.is_legal(b.host_addr(i, 1)));
        }
        assert!(!b.is_legal(a.victim_addr()));
        assert_ne!(a.victim_addr(), b.victim_addr());
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn illegal_spoof_base_rejected() {
        let _ = AddressSpace::with_base(192, 2);
    }

    #[test]
    #[should_panic(expected = "out of /16 range")]
    fn host_zero_rejected() {
        let _ = AddressSpace::new(1).host_addr(0, 0);
    }
}
