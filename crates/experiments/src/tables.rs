//! Tables I and II of the paper: notation and default parameters,
//! printed next to the values this reproduction actually uses, plus a
//! measured default-configuration run.

use crate::engine::{run_specs, EngineConfig};
use mafic_workload::ScenarioSpec;

/// Renders Table I (notation) as text.
#[must_use]
pub fn table_i() -> String {
    let rows: &[(&str, &str)] = &[
        ("Pd", "SFT packet dropping probability"),
        ("R", "Flow rate (packets/second)"),
        ("Vt", "Traffic volume (total number of flows)"),
        ("Gamma", "Percentage of TCP flows"),
        ("alpha", "Attacking packets dropping accuracy"),
        ("N", "Domain size (number of routers)"),
        ("beta", "Traffic reduction rate"),
        ("theta_p", "False positive rate"),
        ("theta_n", "False negative rate"),
        (
            "Lr",
            "Legitimate packets dropped rate in identifying malicious flows",
        ),
    ];
    let mut out = String::from("=== Table I — notation ===\n");
    for (sym, def) in rows {
        out.push_str(&format!("{sym:>8}  {def}\n"));
    }
    out
}

/// Renders Table II (default parameters) with the paper's value and the
/// value this reproduction uses.
#[must_use]
pub fn table_ii() -> String {
    let spec = ScenarioSpec::default();
    let rows = [
        (
            "Pd",
            "90%".to_string(),
            format!("{:.0}%", spec.drop_probability * 100.0),
        ),
        (
            "R",
            "1e6 packets/second".to_string(),
            format!(
                "{} packets/s per source (see DESIGN.md on the paper's unit clash)",
                spec.flow_rate_pps
            ),
        ),
        (
            "Vt",
            "50 flows".to_string(),
            format!("{} flows", spec.total_flows),
        ),
        (
            "Gamma",
            "95%".to_string(),
            format!("{:.0}%", spec.tcp_share * 100.0),
        ),
        (
            "N",
            "40 routers".to_string(),
            format!("{} routers", spec.n_routers),
        ),
    ];
    let mut out = String::from("=== Table II — default parameters (paper vs this run) ===\n");
    out.push_str(&format!(
        "{:>8}  {:>22}  {}\n",
        "param", "paper", "reproduction"
    ));
    for (name, paper, ours) in rows {
        out.push_str(&format!("{name:>8}  {paper:>22}  {ours}\n"));
    }
    out
}

/// Runs the default configuration once (through the engine, like every
/// other experiment entrypoint) and renders its metrics.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn default_run_summary(cfg: &EngineConfig) -> Result<String, String> {
    let outcome = run_specs(vec![ScenarioSpec::default()], cfg.jobs)?
        .pop()
        .expect("one spec in, one outcome out");
    let mut out = String::from("=== Default-configuration run ===\n");
    out.push_str(&outcome.report.to_string());
    out.push('\n');
    match outcome.triggered_at {
        Some(t) => out.push_str(&format!(
            "pushback triggered at {t} via {} ATRs\n",
            outcome.atr_nodes.len()
        )),
        None => out.push_str("pushback never triggered\n"),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_lists_all_symbols() {
        let t = table_i();
        for sym in ["Pd", "Vt", "alpha", "beta", "theta_p", "theta_n", "Lr"] {
            assert!(t.contains(sym), "missing {sym}");
        }
    }

    #[test]
    fn table_ii_shows_paper_and_ours() {
        let t = table_ii();
        assert!(t.contains("90%"));
        assert!(t.contains("40 routers"));
        assert!(t.contains("paper"));
        assert!(t.contains("reproduction"));
    }
}
