//! Inter-domain cascaded pushback walkthrough.
//!
//! Builds a multi-domain internet — the victim's stub domain, a transit
//! chain, and remote stub domains hosting most of the zombies — floods
//! the victim, and narrates the cascade: local detection, escalation
//! hop by hop toward the sources (as routed control packets over the
//! inter-domain links), and the per-domain residual once every boundary
//! is dropping.
//!
//! ```text
//! cargo run --release --example cascaded_pushback
//! ```

use mafic_suite::topology::TransitTopology;
use mafic_suite::workload::{run_scenario, Scenario, ScenarioSpec};

fn main() -> Result<(), mafic_suite::workload::WorkloadError> {
    let spec = ScenarioSpec {
        total_flows: 36,
        tcp_share: 0.85,
        domains: 3,
        transit_topology: TransitTopology::Chain { depth: 2 },
        pushback_depth: 3,
        end: mafic_suite::netsim::SimTime::from_secs_f64(6.0),
        seed: 29,
        ..ScenarioSpec::default()
    };
    let mut scenario = Scenario::build(spec)?;

    let net = scenario.internet.as_ref().expect("multi-domain spec");
    println!("== internet ==");
    for (i, d) in net.domains.iter().enumerate() {
        println!(
            "domain {i}: {:?} level {} ({} routers, {} hosts), ctrl {}",
            d.role,
            d.level,
            d.domain.routers().len(),
            d.domain.hosts.len(),
            d.ctrl_addr
        );
    }
    let zombies = scenario.flows.iter().filter(|f| f.is_attack);
    println!();
    println!("== zombies ==");
    for f in zombies {
        println!(
            "  stub {} via ingress#{} claims {}",
            f.stub_index, f.ingress_index, f.key.src
        );
    }

    let outcome = run_scenario(&mut scenario)?;

    println!();
    println!("== cascade timeline ==");
    println!(
        "t={:.3}s  attack begins",
        scenario.spec.attack_start.as_secs_f64()
    );
    match outcome.triggered_at {
        Some(t) => println!(
            "t={:.3}s  victim-domain defense engages ({} ATRs)",
            t.as_secs_f64(),
            outcome.atr_nodes.len()
        ),
        None => println!("          (defense never triggered)"),
    }
    for &(at, d) in &outcome.escalations {
        println!(
            "t={:.3}s  pushback escalates to domain {d} (level {})",
            at.as_secs_f64(),
            scenario.pushback.as_ref().expect("plan").domains[d].level
        );
    }
    println!(
        "deepest level activated: {} (budget {})",
        outcome.max_pushback_depth, scenario.spec.pushback_depth
    );

    println!();
    println!("== per-domain residual (victim-bound bytes leaking past each boundary) ==");
    let plan = scenario.pushback.as_ref().expect("plan");
    for (i, d) in plan.domains.iter().enumerate() {
        println!(
            "domain {i} (level {}): {:>12} B residual past its ATRs",
            d.level, d.residual_bytes
        );
    }

    println!();
    println!("== verdict ==");
    println!("{}", outcome.report);
    Ok(())
}
