//! The control channel: where inter-domain pushback packets land.

use mafic_netsim::{Agent, AgentCtx, Packet, PacketKind, PushbackMsg, SimTime};
use std::any::Any;

/// The agent bound to a domain's control address.
///
/// Pushback messages travel as [`PacketKind::Pushback`] packets over the
/// inter-domain links — they queue, serialize, and propagate like any
/// other traffic, so the control plane obeys the same total event order
/// as the data plane (ARCHITECTURE.md rule 2). The channel records each
/// arrival; the pushback monitor drains the inbox once per interval and
/// feeds it to the domain's coordinator.
#[derive(Debug, Default)]
pub struct ControlChannel {
    inbox: Vec<(SimTime, PushbackMsg)>,
    received_total: u64,
}

impl ControlChannel {
    /// Creates an empty channel.
    #[must_use]
    pub fn new() -> Self {
        ControlChannel::default()
    }

    /// Removes and returns the queued messages in arrival order.
    pub fn drain(&mut self) -> Vec<(SimTime, PushbackMsg)> {
        std::mem::take(&mut self.inbox)
    }

    /// Messages received over the channel's lifetime.
    #[must_use]
    pub fn received_total(&self) -> u64 {
        self.received_total
    }
}

impl Agent for ControlChannel {
    fn on_start(&mut self, _ctx: &mut AgentCtx<'_>) {}

    fn on_packet(&mut self, packet: Packet, ctx: &mut AgentCtx<'_>) {
        if let PacketKind::Pushback(msg) = packet.kind {
            self.inbox.push((ctx.now(), msg));
            self.received_total += 1;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mafic_netsim::testkit::AgentHarness;
    use mafic_netsim::{Addr, FlowKey, Provenance};

    fn push_pkt(msg: PushbackMsg) -> Packet {
        Packet {
            id: 1,
            key: FlowKey::new(Addr::new(1), Addr::new(2), 9, 9),
            kind: PacketKind::Pushback(msg),
            size_bytes: 64,
            created_at: SimTime::ZERO,
            provenance: Provenance::infrastructure(),
            hops: 0,
        }
    }

    #[test]
    fn queues_pushback_messages_in_arrival_order() {
        let mut h = AgentHarness::new();
        let mut ch = ControlChannel::new();
        let victim = Addr::new(42);
        let _ = h.deliver(
            &mut ch,
            push_pkt(PushbackMsg::PushbackRequest {
                victim,
                aggregate_bps: 1_000_000,
                budget: 2,
            }),
        );
        let _ = h.deliver(
            &mut ch,
            push_pkt(PushbackMsg::Refresh { victim, budget: 1 }),
        );
        let msgs = ch.drain();
        assert_eq!(msgs.len(), 2);
        assert!(matches!(
            msgs[0].1,
            PushbackMsg::PushbackRequest { budget: 2, .. }
        ));
        assert!(matches!(msgs[1].1, PushbackMsg::Refresh { .. }));
        assert!(ch.drain().is_empty(), "drain empties the inbox");
        assert_eq!(ch.received_total(), 2);
    }

    #[test]
    fn non_pushback_packets_are_ignored() {
        let mut h = AgentHarness::new();
        let mut ch = ControlChannel::new();
        let mut p = push_pkt(PushbackMsg::Withdraw {
            victim: Addr::new(1),
        });
        p.kind = PacketKind::Udp;
        let _ = h.deliver(&mut ch, p);
        assert!(ch.drain().is_empty());
        assert_eq!(ch.received_total(), 0);
    }
}
