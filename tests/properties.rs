//! Property-based tests over the core data structures and invariants,
//! spanning crates (hence at workspace level).

use mafic_suite::core::{
    AddressValidator, FlowLabel, LabelMode, MaficConfig, MaficFilter,
};
use mafic_suite::loglog::{LogLog, Precision};
use mafic_suite::netsim::testkit::FilterHarness;
use mafic_suite::netsim::{
    Addr, DropReason, FilterAction, FlowKey, Packet, PacketKind, Provenance, SimDuration,
    SimTime,
};
use proptest::prelude::*;

fn arbitrary_key() -> impl Strategy<Value = FlowKey> {
    (any::<u32>(), any::<u32>(), any::<u16>(), any::<u16>()).prop_map(|(s, d, sp, dp)| {
        FlowKey::new(Addr::new(s), Addr::new(d), sp, dp)
    })
}

proptest! {
    /// Hashed labels are a pure function of the key.
    #[test]
    fn flow_labels_are_deterministic(key in arbitrary_key()) {
        let a = FlowLabel::from_key(key, LabelMode::Hashed);
        let b = FlowLabel::from_key(key, LabelMode::Hashed);
        prop_assert_eq!(a, b);
        prop_assert_eq!(a.token(), b.token());
    }

    /// Reversing a flow key twice is the identity.
    #[test]
    fn flow_key_reversal_involution(key in arbitrary_key()) {
        prop_assert_eq!(key.reversed().reversed(), key);
    }

    /// LogLog merge is commutative: merge(a,b) == merge(b,a) on registers.
    #[test]
    fn loglog_merge_commutes(
        items_a in proptest::collection::vec(any::<u64>(), 0..500),
        items_b in proptest::collection::vec(any::<u64>(), 0..500),
    ) {
        let mut a = LogLog::new(Precision::P8);
        let mut b = LogLog::new(Precision::P8);
        for &x in &items_a { a.insert_u64(x); }
        for &x in &items_b { b.insert_u64(x); }
        let ab = a.merged(&b).unwrap();
        let ba = b.merged(&a).unwrap();
        prop_assert_eq!(ab.registers(), ba.registers());
    }

    /// Merging can only grow (or keep) the estimate: union dominates parts.
    #[test]
    fn loglog_union_dominates_parts(
        items_a in proptest::collection::vec(any::<u64>(), 1..500),
        items_b in proptest::collection::vec(any::<u64>(), 1..500),
    ) {
        let mut a = LogLog::new(Precision::P8);
        let mut b = LogLog::new(Precision::P8);
        for &x in &items_a { a.insert_u64(x); }
        for &x in &items_b { b.insert_u64(x); }
        let union = a.merged(&b).unwrap();
        // Register-wise max implies the union's registers dominate both.
        for (u, (x, y)) in union
            .registers()
            .iter()
            .zip(a.registers().iter().zip(b.registers().iter()))
        {
            prop_assert!(u >= x && u >= y);
        }
    }

    /// Duplicate insertions never change a LogLog's registers.
    #[test]
    fn loglog_idempotent_inserts(items in proptest::collection::vec(any::<u64>(), 1..200)) {
        let mut once = LogLog::new(Precision::P8);
        let mut thrice = LogLog::new(Precision::P8);
        for &x in &items { once.insert_u64(x); }
        for _ in 0..3 {
            for &x in &items { thrice.insert_u64(x); }
        }
        prop_assert_eq!(once.registers(), thrice.registers());
    }

    /// The MAFIC filter never drops packets for other destinations, no
    /// matter the flow key, and always drops PDT'd flows' packets.
    #[test]
    fn mafic_filter_scope_invariant(key in arbitrary_key(), pd in 0.0f64..=1.0) {
        let victim = Addr::from_octets(10, 200, 0, 1);
        prop_assume!(key.dst != victim);
        let config = MaficConfig {
            drop_probability: pd,
            ..MaficConfig::default()
        };
        let mut filter = MaficFilter::new(config, AddressValidator::AllowAll);
        filter.activate(victim);
        let mut h = FilterHarness::new();
        let pkt = Packet {
            id: 1,
            key,
            kind: PacketKind::Udp,
            size_bytes: 100,
            created_at: SimTime::ZERO,
            provenance: Provenance::infrastructure(),
            hops: 0,
        };
        let fx = h.offer_transit(&mut filter, &pkt);
        prop_assert_eq!(fx.action, Some(FilterAction::Forward));
    }

    /// With Pd = 1 every first packet of a legal new flow is dropped and
    /// probed; with Pd = 0 nothing is ever dropped.
    #[test]
    fn mafic_extreme_pd_behaviour(key in arbitrary_key()) {
        let victim = Addr::from_octets(10, 200, 0, 1);
        let key = FlowKey { dst: victim, ..key };
        for (pd, expect_drop) in [(1.0, true), (0.0, false)] {
            let config = MaficConfig { drop_probability: pd, ..MaficConfig::default() };
            let mut filter = MaficFilter::new(config, AddressValidator::AllowAll);
            filter.activate(victim);
            let mut h = FilterHarness::new();
            let pkt = Packet {
                id: 1,
                key,
                kind: PacketKind::Udp,
                size_bytes: 100,
                created_at: SimTime::ZERO,
                provenance: Provenance::infrastructure(),
                hops: 0,
            };
            let fx = h.offer_transit(&mut filter, &pkt);
            if expect_drop {
                prop_assert_eq!(fx.action, Some(FilterAction::Drop(DropReason::FilterProbing)));
                prop_assert_eq!(fx.emitted.len(), 1, "probe must be emitted");
            } else {
                prop_assert_eq!(fx.action, Some(FilterAction::Forward));
                prop_assert!(fx.emitted.is_empty());
            }
        }
    }

    /// Address prefix membership is consistent with explicit masking.
    #[test]
    fn prefix_membership_matches_mask(addr in any::<u32>(), prefix in any::<u32>(), len in 0u8..=32) {
        let a = Addr::new(addr);
        let p = Addr::new(prefix);
        let expected = if len == 0 {
            true
        } else {
            let mask = u32::MAX << (32 - u32::from(len));
            (addr & mask) == (prefix & mask)
        };
        prop_assert_eq!(a.in_prefix(p, len), expected);
    }

    /// SimTime arithmetic: (t + d) - t == d for all representable pairs.
    #[test]
    fn time_addition_round_trips(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let time = SimTime::from_nanos(t);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((time + dur) - time, dur);
    }
}
