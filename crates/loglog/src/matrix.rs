//! The estimated domain traffic matrix `A = {a_ij}`.
//!
//! The `TrafficMonitor` of the paper's NS-2 implementation periodically
//! gathers the per-router sketch pairs and computes, for every
//! (ingress, egress) pair, the estimated number of distinct packets that
//! traversed that pair. A last-hop router whose `|D_j|` spikes is a DDoS
//! victim candidate, and the ingress routers contributing the largest
//! `a_ij` share toward it are the Attack Transit Routers.

use crate::loglog::SketchError;
use crate::setunion::RouterSketch;
use std::fmt;

/// Index of a router within a [`TrafficMatrix`] snapshot.
///
/// This is a dense per-snapshot index, not a global router identity; the
/// caller keeps the mapping (the simulator maps it to `NodeId`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RouterSketchId(pub usize);

impl fmt::Display for RouterSketchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "router#{}", self.0)
    }
}

/// A dense estimate of the domain traffic matrix.
///
/// # Example
///
/// ```
/// use mafic_loglog::{RouterSketch, TrafficMatrix, Precision, RouterSketchId};
///
/// let mut r0 = RouterSketch::new(Precision::P10);
/// let mut r1 = RouterSketch::new(Precision::P10);
/// // 4000 packets enter at r0 and leave at r1.
/// for id in 0u64..4_000 {
///     r0.record_source(id);
///     r1.record_destination(id);
/// }
/// let m = TrafficMatrix::estimate(&[r0, r1]).unwrap();
/// assert!(m.flow(RouterSketchId(0), RouterSketchId(1)) > m.flow(RouterSketchId(1), RouterSketchId(0)));
/// ```
#[derive(Debug, Clone)]
pub struct TrafficMatrix {
    n: usize,
    /// Row-major `a_ij`: packets entering at `i` and leaving at `j`.
    flows: Vec<f64>,
    source_card: Vec<f64>,
    dest_card: Vec<f64>,
}

impl TrafficMatrix {
    /// Estimates the traffic matrix from one sketch pair per router.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError`] if the routers' sketches use different
    /// precisions.
    pub fn estimate(routers: &[RouterSketch]) -> Result<TrafficMatrix, SketchError> {
        let n = routers.len();
        let mut flows = vec![0.0; n * n];
        let source_card: Vec<f64> = routers
            .iter()
            .map(RouterSketch::source_cardinality)
            .collect();
        let dest_card: Vec<f64> = routers
            .iter()
            .map(RouterSketch::destination_cardinality)
            .collect();
        for (i, ingress) in routers.iter().enumerate() {
            // Skip silent ingresses: their row is exactly zero and the
            // inclusion–exclusion noise would otherwise pollute it.
            if ingress.source_sketch().is_empty() {
                continue;
            }
            for (j, egress) in routers.iter().enumerate() {
                if egress.destination_sketch().is_empty() {
                    continue;
                }
                flows[i * n + j] = ingress.flow_estimate(egress)?;
            }
        }
        Ok(TrafficMatrix {
            n,
            flows,
            source_card,
            dest_card,
        })
    }

    /// Number of routers in the snapshot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the snapshot covers no routers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Estimated `a_ij` — distinct packets entering at `i`, leaving at `j`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn flow(&self, i: RouterSketchId, j: RouterSketchId) -> f64 {
        assert!(i.0 < self.n && j.0 < self.n, "router index out of range");
        self.flows[i.0 * self.n + j.0]
    }

    /// Estimated `|S_i|` for router `i`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[must_use]
    pub fn source_cardinality(&self, i: RouterSketchId) -> f64 {
        self.source_card[i.0]
    }

    /// Estimated `|D_j|` for router `j`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[must_use]
    pub fn destination_cardinality(&self, j: RouterSketchId) -> f64 {
        self.dest_card[j.0]
    }

    /// The column of estimated contributions toward egress `j`, i.e. for
    /// each ingress `i` the estimated `a_ij`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[must_use]
    pub fn contributions_to(&self, j: RouterSketchId) -> Vec<(RouterSketchId, f64)> {
        assert!(j.0 < self.n, "router index out of range");
        (0..self.n)
            .map(|i| (RouterSketchId(i), self.flows[i * self.n + j.0]))
            .collect()
    }

    /// The egress router with the largest estimated `|D_j|`, if any traffic
    /// was seen at all.
    #[must_use]
    pub fn busiest_egress(&self) -> Option<(RouterSketchId, f64)> {
        self.dest_card
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0.0)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &c)| (RouterSketchId(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loglog::Precision;

    fn three_router_domain() -> Vec<RouterSketch> {
        // r0, r1 are ingresses; r2 is the egress (victim side).
        // r0 -> r2: ids 0..8000 ; r1 -> r2: ids 8000..10000.
        let mut r0 = RouterSketch::new(Precision::P12);
        let mut r1 = RouterSketch::new(Precision::P12);
        let mut r2 = RouterSketch::new(Precision::P12);
        for id in 0u64..8_000 {
            r0.record_source(id);
            r2.record_destination(id);
        }
        for id in 8_000u64..10_000 {
            r1.record_source(id);
            r2.record_destination(id);
        }
        vec![r0, r1, r2]
    }

    #[test]
    fn estimates_relative_contributions() {
        let m = TrafficMatrix::estimate(&three_router_domain()).unwrap();
        let a02 = m.flow(RouterSketchId(0), RouterSketchId(2));
        let a12 = m.flow(RouterSketchId(1), RouterSketchId(2));
        assert!(a02 > a12, "heavy ingress should dominate: {a02} vs {a12}");
        assert!((m.destination_cardinality(RouterSketchId(2)) - 10_000.0).abs() / 10_000.0 < 0.2);
    }

    #[test]
    fn busiest_egress_is_victim() {
        let m = TrafficMatrix::estimate(&three_router_domain()).unwrap();
        let (id, card) = m.busiest_egress().unwrap();
        assert_eq!(id, RouterSketchId(2));
        assert!(card > 5_000.0);
    }

    #[test]
    fn empty_matrix() {
        let m = TrafficMatrix::estimate(&[]).unwrap();
        assert!(m.is_empty());
        assert!(m.busiest_egress().is_none());
    }

    #[test]
    fn silent_routers_have_zero_rows() {
        let m = TrafficMatrix::estimate(&three_router_domain()).unwrap();
        // r2 injects nothing, so its row is zero.
        assert_eq!(m.flow(RouterSketchId(2), RouterSketchId(2)), 0.0);
        assert_eq!(m.flow(RouterSketchId(2), RouterSketchId(0)), 0.0);
    }

    #[test]
    fn contributions_sum_close_to_destination_cardinality() {
        let m = TrafficMatrix::estimate(&three_router_domain()).unwrap();
        let total: f64 = m
            .contributions_to(RouterSketchId(2))
            .iter()
            .map(|(_, v)| v)
            .sum();
        let dj = m.destination_cardinality(RouterSketchId(2));
        assert!((total - dj).abs() / dj < 0.5, "sum {total} vs |D_j| {dj}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flow_bounds_checked() {
        let m = TrafficMatrix::estimate(&three_router_domain()).unwrap();
        let _ = m.flow(RouterSketchId(9), RouterSketchId(0));
    }
}
