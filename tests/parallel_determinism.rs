//! Determinism rule 5 (ARCHITECTURE.md): parallelism must never change
//! results. The experiment engine fans scenario runs across worker
//! threads but reassembles in job-index order, so a sweep's output must
//! be **byte-identical** at any worker count. These tests pin that
//! contract at the `FigureData`/`MetricsReport` level — the exact bytes
//! the figure binaries print.

use mafic_suite::experiments::engine::{run_specs, EngineConfig};
use mafic_suite::experiments::sweep::{figure_from_sweep, run_averaged, sweep, SweepSeries};
use mafic_suite::netsim::SimTime;
use mafic_suite::obs::diff_ledgers;
use mafic_suite::workload::ScenarioSpec;

/// A reduced but non-trivial grid: 2 series × 2 x values × 2 trials =
/// 8 independent runs, enough for workers to interleave freely.
fn tiny_sweep(cfg: &EngineConfig) -> Vec<SweepSeries> {
    let series = vec![
        ("Pd=90%".to_string(), 0.9f64),
        ("Pd=70%".to_string(), 0.7f64),
    ];
    let xs = vec![8.0, 12.0];
    sweep(&series, &xs, cfg, |&pd, x| ScenarioSpec {
        total_flows: x as usize,
        n_routers: 5,
        drop_probability: pd,
        end: SimTime::from_secs_f64(2.5),
        ..ScenarioSpec::default()
    })
    .expect("sweep runs")
}

#[test]
fn sweep_grid_is_byte_identical_serial_vs_parallel() {
    let serial = tiny_sweep(&EngineConfig::serial(2));
    let parallel = tiny_sweep(&EngineConfig { jobs: 4, trials: 2 });

    // Reports first (precise failure location)...
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.label, p.label);
        for (sp, pp) in s.points.iter().zip(&p.points) {
            assert_eq!(sp.report, pp.report, "point x={} of {}", sp.x, s.label);
        }
    }
    // ...then the exact rendered bytes the binaries would print.
    let render = |sweeps: &[SweepSeries]| {
        let fig = figure_from_sweep("Fig. T", "t", "x", "y", sweeps, |r| r.accuracy_pct);
        format!("{fig}\n{}\n{sweeps:?}", fig.to_gnuplot())
    };
    assert_eq!(render(&serial), render(&parallel));
}

#[test]
fn sweep_respects_mafic_jobs_from_env() {
    // CI runs this test with MAFIC_JOBS=4 set; locally it falls back to
    // `available_parallelism()`. Either way the output must match the
    // single-worker reference exactly. Trials are pinned so a stray
    // MAFIC_TRIALS cannot change the grid under comparison.
    let env_jobs = EngineConfig::from_env().expect("valid engine env").jobs;
    let serial = tiny_sweep(&EngineConfig::serial(2));
    let parallel = tiny_sweep(&EngineConfig {
        jobs: env_jobs,
        trials: 2,
    });
    assert_eq!(
        format!("{serial:?}"),
        format!("{parallel:?}"),
        "jobs={env_jobs} diverged from serial"
    );
}

#[test]
fn run_averaged_is_identical_at_any_worker_count() {
    let base = ScenarioSpec {
        total_flows: 10,
        n_routers: 5,
        end: SimTime::from_secs_f64(2.5),
        seed: 77,
        ..ScenarioSpec::default()
    };
    let serial = run_averaged(&base, &EngineConfig::serial(3)).unwrap();
    let parallel = run_averaged(&base, &EngineConfig { jobs: 3, trials: 3 }).unwrap();
    assert_eq!(serial, parallel);
}

/// The run ledger must be byte-identical at any worker count: each run
/// is single-threaded internally, so `MAFIC_JOBS` may change scheduling
/// of *whole runs* but must never leak into per-interval state hashes.
/// This is the in-process twin of the CI `run_ledger` 1-vs-4 cmp gate;
/// on mismatch the differ names the first diverging interval+component.
#[test]
fn ledgers_are_byte_identical_at_jobs_1_and_4() {
    let specs: Vec<ScenarioSpec> = [3u64, 9]
        .iter()
        .map(|&seed| ScenarioSpec {
            total_flows: 10,
            n_routers: 5,
            end: SimTime::from_secs_f64(2.5),
            ledger: true,
            trace_capacity: 32,
            seed,
            ..ScenarioSpec::default()
        })
        .collect();
    let serial = run_specs(specs.clone(), 1).unwrap();
    let parallel = run_specs(specs, 4).unwrap();
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        let (ls, lp) = (
            s.ledger.as_ref().expect("ledger on"),
            p.ledger.as_ref().expect("ledger on"),
        );
        let report = diff_ledgers(ls, lp);
        assert!(
            report.is_identical(),
            "run {i}: jobs=4 diverged from jobs=1:\n{report}"
        );
        assert_eq!(
            ls.to_jsonl(),
            lp.to_jsonl(),
            "run {i}: ledger bytes differ across worker counts"
        );
    }
}

#[test]
fn run_specs_preserves_spec_order() {
    let specs: Vec<ScenarioSpec> = [0.7, 0.8, 0.9, 1.0]
        .iter()
        .enumerate()
        .map(|(i, &pd)| ScenarioSpec {
            total_flows: 8 + i,
            n_routers: 5,
            drop_probability: pd,
            end: SimTime::from_secs_f64(2.0),
            seed: 100 + i as u64,
            ..ScenarioSpec::default()
        })
        .collect();
    let serial = run_specs(specs.clone(), 1).unwrap();
    let parallel = run_specs(specs, 4).unwrap();
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s.report, p.report, "outcome {i} out of order or diverged");
        assert_eq!(s.packets_sent, p.packets_sent, "outcome {i}");
        assert_eq!(s.triggered_at, p.triggered_at, "outcome {i}");
    }
}
