//! Victim-bound rate metering at an Attack Transit Router.

use mafic_netsim::{Addr, FilterAction, FilterCtx, Packet, PacketEnv, PacketFilter};
use std::any::Any;

/// A passive filter counting victim-bound bytes and packets.
///
/// The pushback monitor drains the window once per monitor interval via
/// [`VictimRateMeter::take_window`]; the windowed byte count over the
/// interval length is the domain's observable escalation signal. The
/// meter reads nothing but the packet's destination address — never the
/// ground-truth provenance — so the escalation decision stays a legal
/// defense-side decision (determinism rule 4).
///
/// Placed *before* the dropper in a router's filter chain it measures
/// the offered victim-bound pressure; placed *after*, only the residual
/// the local defense lets through.
#[derive(Debug)]
pub struct VictimRateMeter {
    victim: Addr,
    window_bytes: u64,
    window_packets: u64,
    total_bytes: u64,
}

impl VictimRateMeter {
    /// Creates a meter for traffic destined to `victim`.
    #[must_use]
    pub fn new(victim: Addr) -> Self {
        VictimRateMeter {
            victim,
            window_bytes: 0,
            window_packets: 0,
            total_bytes: 0,
        }
    }

    /// The victim address being metered.
    #[must_use]
    pub fn victim(&self) -> Addr {
        self.victim
    }

    /// Returns `(bytes, packets)` observed since the previous drain and
    /// resets the window.
    pub fn take_window(&mut self) -> (u64, u64) {
        let out = (self.window_bytes, self.window_packets);
        self.window_bytes = 0;
        self.window_packets = 0;
        out
    }

    /// Victim-bound bytes observed over the meter's lifetime.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }
}

impl mafic_obs::StateHash for VictimRateMeter {
    fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        h.write_u32(self.victim.as_u32());
        h.write_u64(self.window_bytes);
        h.write_u64(self.window_packets);
        h.write_u64(self.total_bytes);
    }
}

impl PacketFilter for VictimRateMeter {
    fn on_packet(
        &mut self,
        packet: &Packet,
        _env: &PacketEnv,
        _ctx: &mut FilterCtx<'_>,
    ) -> FilterAction {
        if packet.key.dst == self.victim {
            self.window_bytes += u64::from(packet.size_bytes);
            self.window_packets += 1;
            self.total_bytes += u64::from(packet.size_bytes);
        }
        FilterAction::Forward
    }

    fn snap_save(&self, w: &mut mafic_obs::SnapWriter) {
        // The victim address is build-time configuration.
        w.write_u64(self.window_bytes);
        w.write_u64(self.window_packets);
        w.write_u64(self.total_bytes);
    }

    fn snap_restore(
        &mut self,
        r: &mut mafic_obs::SnapReader<'_>,
    ) -> Result<(), mafic_obs::SnapError> {
        self.window_bytes = r.read_u64()?;
        self.window_packets = r.read_u64()?;
        self.total_bytes = r.read_u64()?;
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mafic_netsim::testkit::FilterHarness;
    use mafic_netsim::{FlowKey, PacketKind, Provenance, SimTime};

    const VICTIM: Addr = Addr::new(0x0AC8_0001);

    fn pkt(dst: Addr, size: u32) -> Packet {
        Packet {
            id: 1,
            key: FlowKey::new(Addr::new(7), dst, 1, 80),
            kind: PacketKind::Udp,
            size_bytes: size,
            created_at: SimTime::ZERO,
            provenance: Provenance::infrastructure(),
            hops: 0,
        }
    }

    #[test]
    fn counts_only_victim_bound_traffic() {
        let mut h = FilterHarness::new();
        let mut m = VictimRateMeter::new(VICTIM);
        assert_eq!(
            h.offer_transit(&mut m, &pkt(VICTIM, 500)).action,
            Some(FilterAction::Forward)
        );
        let _ = h.offer_transit(&mut m, &pkt(Addr::new(9), 500));
        let _ = h.offer_transit(&mut m, &pkt(VICTIM, 300));
        assert_eq!(m.take_window(), (800, 2));
        assert_eq!(m.total_bytes(), 800);
    }

    #[test]
    fn windows_reset_on_drain() {
        let mut h = FilterHarness::new();
        let mut m = VictimRateMeter::new(VICTIM);
        let _ = h.offer_transit(&mut m, &pkt(VICTIM, 100));
        assert_eq!(m.take_window(), (100, 1));
        assert_eq!(m.take_window(), (0, 0));
        let _ = h.offer_transit(&mut m, &pkt(VICTIM, 50));
        assert_eq!(m.take_window(), (50, 1));
        assert_eq!(m.total_bytes(), 150, "lifetime total keeps accumulating");
    }

    #[test]
    fn snapshot_round_trips_an_undrained_window() {
        use mafic_obs::StateHash;
        let mut h = FilterHarness::new();
        let mut m = VictimRateMeter::new(VICTIM);
        let _ = h.offer_transit(&mut m, &pkt(VICTIM, 500));
        let _ = h.offer_transit(&mut m, &pkt(VICTIM, 300));
        let mut w = mafic_obs::SnapWriter::new();
        m.snap_save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = VictimRateMeter::new(VICTIM);
        let mut r = mafic_obs::SnapReader::new(&bytes);
        restored.snap_restore(&mut r).expect("restore succeeds");
        assert!(r.is_empty());
        let digest = |m: &VictimRateMeter| {
            let mut h = mafic_obs::Fnv64::new();
            m.hash_state(&mut h);
            h.finish()
        };
        assert_eq!(digest(&m), digest(&restored));
        assert_eq!(restored.take_window(), (800, 2), "window survives intact");
    }
}
