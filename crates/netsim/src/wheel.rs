//! Hierarchical timer wheel for filter flow-timers.
//!
//! MAFIC arms one probation timer per sampled flow and (optionally) one
//! re-validation timer per nice flow — at scale, hundreds of thousands of
//! concurrent timers. Pushing each through the global binary-heap event
//! queue costs `O(log n)` per packet *and* interleaves timer churn with
//! packet events. The wheel gives `O(1)` insertion into tick-indexed
//! buckets, with a three-level hierarchy (plus an overflow list) covering
//! any horizon.
//!
//! Layout: level 0 has 256 one-tick slots (tick = 2^20 ns ≈ 1.05 ms),
//! level 1 has 64 slots of 256 ticks (≈ 268 ms each), level 2 has 64
//! slots of 16 384 ticks (≈ 17 s each); anything further out waits in the
//! overflow list and cascades down as the wheel turns.
//!
//! Determinism: expiring entries fire in `(deadline, insertion sequence)`
//! order — exactly the tie-break rule of the main event heap — so replays
//! are bit-identical. Deadlines are exact (sub-tick nanoseconds are kept
//! on the entry); the wheel's granularity affects bucketing only, never
//! firing times.
//!
//! There is no cancel operation: consumers (the MAFIC dropper) treat a
//! stale fire as a no-op by re-checking per-flow state, which is cheaper
//! than tombstone bookkeeping on the arm-heavy path.

use crate::time::SimTime;
use mafic_obs::{SnapError, SnapReader, SnapWriter};

/// log2 of the tick length in nanoseconds (2^20 ns ≈ 1.05 ms).
const TICK_SHIFT: u32 = 20;
const L0_SLOTS: usize = 256;
const L1_SLOTS: usize = 64;
const L2_SLOTS: usize = 64;
/// Ticks covered by level 0.
const L0_SPAN: u64 = L0_SLOTS as u64;
/// Ticks covered by levels 0–1.
const L1_SPAN: u64 = L0_SPAN * L1_SLOTS as u64;
/// Ticks covered by levels 0–2.
const L2_SPAN: u64 = L1_SPAN * L2_SLOTS as u64;

#[derive(Debug, Clone)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

#[inline]
fn tick_of(at: SimTime) -> u64 {
    at.as_nanos() >> TICK_SHIFT
}

/// A three-level hierarchical timer wheel with exact deadlines.
#[derive(Debug)]
pub(crate) struct TimerWheel<T> {
    level0: Vec<Vec<Entry<T>>>,
    level1: Vec<Vec<Entry<T>>>,
    level2: Vec<Vec<Entry<T>>>,
    overflow: Vec<Entry<T>>,
    /// The tick the wheel has advanced to.
    cur_tick: u64,
    len: usize,
    next_seq: u64,
    scheduled_total: u64,
    /// Cached earliest deadline; `None` when it must be recomputed.
    cached_next: Option<SimTime>,
    cache_valid: bool,
}

impl<T> TimerWheel<T> {
    pub(crate) fn new() -> Self {
        TimerWheel {
            level0: (0..L0_SLOTS).map(|_| Vec::new()).collect(),
            level1: (0..L1_SLOTS).map(|_| Vec::new()).collect(),
            level2: (0..L2_SLOTS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            cur_tick: 0,
            len: 0,
            next_seq: 0,
            scheduled_total: 0,
            cached_next: None,
            cache_valid: true,
        }
    }

    /// Number of pending timers.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Total timers ever scheduled (run accounting).
    pub(crate) fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Arms a timer firing at `at` (clamped to the wheel's present).
    pub(crate) fn insert(&mut self, at: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.len += 1;
        if self.cache_valid {
            self.cached_next = Some(match self.cached_next {
                Some(prev) if prev <= at => prev,
                _ => at,
            });
        }
        self.place(Entry { at, seq, payload });
    }

    fn place(&mut self, entry: Entry<T>) {
        let at_tick = tick_of(entry.at).max(self.cur_tick);
        let delta = at_tick - self.cur_tick;
        if delta < L0_SPAN {
            self.level0[(at_tick % L0_SPAN) as usize].push(entry);
        } else if delta < L1_SPAN {
            self.level1[((at_tick / L0_SPAN) % L1_SLOTS as u64) as usize].push(entry);
        } else if delta < L2_SPAN {
            self.level2[((at_tick / L1_SPAN) % L2_SLOTS as u64) as usize].push(entry);
        } else {
            self.overflow.push(entry);
        }
    }

    /// The exact instant of the earliest pending timer, if any.
    pub(crate) fn next_expiry(&mut self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if !self.cache_valid {
            self.cached_next = self.scan_next();
            self.cache_valid = true;
        }
        self.cached_next
    }

    fn scan_next(&self) -> Option<SimTime> {
        // No cross-slot ordering shortcut is safe outside level 0:
        // cascading only happens when `pop_expired` crosses a level
        // boundary, so an outer-level entry can be nearer than every
        // level-0 entry, and a level's *base* slot can hold next-rotation
        // entries (a full span away) while a later slot holds this
        // rotation's nearest — "first non-empty slot" lies in both cases.
        // Level 0 is the exception (one exact tick per slot, entries
        // always within [cur, cur+256)); the outer levels and the
        // overflow list are scanned entry-wise. The result is cached by
        // `next_expiry` and only recomputed after a pop, so the scan
        // amortizes across events.
        let mut best: Option<SimTime> = None;
        let mut consider = |candidate: SimTime| match best {
            Some(b) if b <= candidate => {}
            _ => best = Some(candidate),
        };
        for step in 0..L0_SLOTS as u64 {
            let slot = &self.level0[((self.cur_tick + step) % L0_SPAN) as usize];
            if let Some(min) = slot.iter().map(|e| e.at).min() {
                consider(min);
                break;
            }
        }
        for slot in self.level1.iter().chain(self.level2.iter()) {
            if let Some(min) = slot.iter().map(|e| e.at).min() {
                consider(min);
            }
        }
        if let Some(min) = self.overflow.iter().map(|e| e.at).min() {
            consider(min);
        }
        best
    }

    /// Advances the wheel to `now` and returns every timer with
    /// `deadline <= now`, in `(deadline, sequence)` order.
    pub(crate) fn pop_expired(&mut self, now: SimTime) -> Vec<T> {
        if self.len == 0 {
            self.cur_tick = self.cur_tick.max(tick_of(now));
            return Vec::new();
        }
        let target_tick = tick_of(now);
        let mut fired: Vec<Entry<T>> = Vec::new();
        loop {
            let slot = &mut self.level0[(self.cur_tick % L0_SPAN) as usize];
            if !slot.is_empty() {
                // Entries here share this tick; sub-tick nanoseconds may
                // still put some past `now` on the final tick.
                let mut i = 0;
                while i < slot.len() {
                    if slot[i].at <= now {
                        fired.push(slot.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
            }
            if self.cur_tick >= target_tick {
                break;
            }
            self.cur_tick += 1;
            if self.cur_tick.is_multiple_of(L0_SPAN) {
                let l1_slot = ((self.cur_tick / L0_SPAN) % L1_SLOTS as u64) as usize;
                let entries = std::mem::take(&mut self.level1[l1_slot]);
                for e in entries {
                    self.place(e);
                }
            }
            if self.cur_tick.is_multiple_of(L1_SPAN) {
                let l2_slot = ((self.cur_tick / L1_SPAN) % L2_SLOTS as u64) as usize;
                let entries = std::mem::take(&mut self.level2[l2_slot]);
                for e in entries {
                    self.place(e);
                }
            }
            if self.cur_tick.is_multiple_of(L2_SPAN) {
                let entries = std::mem::take(&mut self.overflow);
                for e in entries {
                    self.place(e);
                }
            }
        }
        fired.sort_by_key(|e| (e.at, e.seq));
        self.len -= fired.len();
        self.cache_valid = false;
        fired.into_iter().map(|e| e.payload).collect()
    }

    /// Folds the wheel state into `h` for the run ledger, encoding each
    /// payload through `payload_fn`.
    ///
    /// Slot storage order is deterministic (it depends only on the
    /// insert/cascade/pop sequence), so raw storage order is hashed as
    /// is. The `cached_next`/`cache_valid` pair is skipped: it is a pure
    /// cache whose warmth depends on `next_expiry` *read* patterns, and
    /// reads must never perturb the ledger.
    pub(crate) fn hash_state(
        &self,
        h: &mut mafic_obs::Fnv64,
        mut payload_fn: impl FnMut(&T, &mut mafic_obs::Fnv64),
    ) {
        h.write_u64(self.cur_tick);
        h.write_usize(self.len);
        h.write_u64(self.next_seq);
        h.write_u64(self.scheduled_total);
        for (level_tag, level) in [(0u8, &self.level0), (1, &self.level1), (2, &self.level2)] {
            for (slot_idx, slot) in level.iter().enumerate() {
                if slot.is_empty() {
                    continue;
                }
                h.write_u8(level_tag);
                h.write_usize(slot_idx);
                h.write_usize(slot.len());
                for entry in slot {
                    h.write_u64(entry.at.as_nanos());
                    h.write_u64(entry.seq);
                    payload_fn(&entry.payload, h);
                }
            }
        }
        h.write_usize(self.overflow.len());
        for entry in &self.overflow {
            h.write_u64(entry.at.as_nanos());
            h.write_u64(entry.seq);
            payload_fn(&entry.payload, h);
        }
    }

    /// Serializes the wheel's physical layout for a checkpoint: every
    /// slot of every level in storage order, then the overflow list.
    /// Storage order is deterministic (it depends only on the insert/
    /// cascade/pop sequence), so restoring it verbatim reproduces the
    /// exact firing order. The `cached_next`/`cache_valid` pair is a
    /// pure cache and is not saved.
    pub(crate) fn snap_save(
        &self,
        w: &mut SnapWriter,
        mut payload_fn: impl FnMut(&T, &mut SnapWriter),
    ) {
        w.write_u64(self.cur_tick);
        w.write_usize(self.len);
        w.write_u64(self.next_seq);
        w.write_u64(self.scheduled_total);
        for level in [&self.level0, &self.level1, &self.level2] {
            for slot in level.iter() {
                w.write_usize(slot.len());
                for entry in slot {
                    w.write_u64(entry.at.as_nanos());
                    w.write_u64(entry.seq);
                    payload_fn(&entry.payload, w);
                }
            }
        }
        w.write_usize(self.overflow.len());
        for entry in &self.overflow {
            w.write_u64(entry.at.as_nanos());
            w.write_u64(entry.seq);
            payload_fn(&entry.payload, w);
        }
    }

    /// Overlays checkpointed wheel state; the expiry cache is
    /// invalidated and recomputed on the next `next_expiry` call.
    pub(crate) fn snap_restore(
        &mut self,
        r: &mut SnapReader<'_>,
        mut payload_fn: impl FnMut(&mut SnapReader<'_>) -> Result<T, SnapError>,
    ) -> Result<(), SnapError> {
        self.cur_tick = r.read_u64()?;
        self.len = r.read_usize()?;
        self.next_seq = r.read_u64()?;
        self.scheduled_total = r.read_u64()?;
        for level in [&mut self.level0, &mut self.level1, &mut self.level2] {
            for slot in level.iter_mut() {
                slot.clear();
                let n = r.read_usize()?;
                for _ in 0..n {
                    let at = SimTime::from_nanos(r.read_u64()?);
                    let seq = r.read_u64()?;
                    let payload = payload_fn(r)?;
                    slot.push(Entry { at, seq, payload });
                }
            }
        }
        self.overflow.clear();
        let n = r.read_usize()?;
        for _ in 0..n {
            let at = SimTime::from_nanos(r.read_u64()?);
            let seq = r.read_u64()?;
            let payload = payload_fn(r)?;
            self.overflow.push(Entry { at, seq, payload });
        }
        self.cached_next = None;
        self.cache_valid = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn fires_in_deadline_then_insertion_order() {
        let mut w = TimerWheel::new();
        w.insert(t(10), "b");
        w.insert(t(5), "a");
        w.insert(t(10), "c");
        assert_eq!(w.next_expiry(), Some(t(5)));
        assert_eq!(w.pop_expired(t(5)), vec!["a"]);
        assert_eq!(w.next_expiry(), Some(t(10)));
        assert_eq!(w.pop_expired(t(10)), vec!["b", "c"]);
        assert_eq!(w.next_expiry(), None);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn sub_tick_deadlines_are_exact() {
        let mut w = TimerWheel::new();
        // Two deadlines inside the same ~1ms tick.
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(900);
        w.insert(b, "late");
        w.insert(a, "early");
        assert_eq!(w.next_expiry(), Some(a));
        assert_eq!(w.pop_expired(a), vec!["early"]);
        assert_eq!(w.next_expiry(), Some(b));
        assert_eq!(w.pop_expired(b), vec!["late"]);
    }

    #[test]
    fn long_horizons_cascade_down_correctly() {
        let mut w = TimerWheel::new();
        // Level 1 (~500 ms), level 2 (~60 s), and overflow (~30 min).
        w.insert(t(500), 1);
        w.insert(t(60_000), 2);
        w.insert(t(30 * 60_000), 3);
        assert_eq!(w.next_expiry(), Some(t(500)));
        assert_eq!(w.pop_expired(t(500)), vec![1]);
        assert_eq!(w.next_expiry(), Some(t(60_000)));
        assert_eq!(w.pop_expired(t(60_000)), vec![2]);
        assert_eq!(w.next_expiry(), Some(t(30 * 60_000)));
        assert_eq!(w.pop_expired(t(30 * 60_000)), vec![3]);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn jumping_past_several_deadlines_fires_all_in_order() {
        let mut w = TimerWheel::new();
        for ms in [7u64, 3, 900, 40, 3] {
            w.insert(t(ms), ms);
        }
        let fired = w.pop_expired(t(1_000));
        assert_eq!(fired, vec![3, 3, 7, 40, 900]);
    }

    #[test]
    fn past_deadlines_fire_immediately() {
        let mut w = TimerWheel::new();
        let _ = w.pop_expired(t(100)); // advance the wheel
        w.insert(t(50), "stale");
        assert_eq!(w.next_expiry(), Some(t(50)));
        assert_eq!(w.pop_expired(t(100)), vec!["stale"]);
    }

    #[test]
    fn outer_level_entry_nearer_than_level0_wins_next_expiry() {
        // Regression: an entry armed into level 1 can become nearer than
        // every level-0 entry if the wheel advances without crossing the
        // 256-tick cascade boundary; next_expiry must not trust level 0
        // alone.
        let tick = |t: u64| SimTime::from_nanos(t << 20);
        let mut w = TimerWheel::new();
        w.insert(tick(100), "warm");
        assert_eq!(w.pop_expired(tick(100)), vec!["warm"]); // cur_tick = 100
        w.insert(tick(400), "outer"); // delta 300 -> level 1
        let _ = w.pop_expired(tick(200)); // advance; no 256 boundary crossed
        w.insert(tick(420), "inner"); // delta 220 -> level 0
        assert_eq!(w.next_expiry(), Some(tick(400)), "outer entry is nearest");
        assert_eq!(w.pop_expired(tick(400)), vec!["outer"]);
        assert_eq!(w.next_expiry(), Some(tick(420)));
        assert_eq!(w.pop_expired(tick(420)), vec!["inner"]);
    }

    #[test]
    fn next_rotation_entry_in_base_slot_does_not_mask_nearer_slots() {
        // Regression: an entry one full rotation ahead lands in the
        // level's *base* slot; a naive first-non-empty walk would report
        // it as the level minimum and miss a nearer entry in a later
        // slot.
        let tick = |t: u64| SimTime::from_nanos(t << 20);
        let mut w = TimerWheel::new();
        w.insert(tick(100), "warm");
        assert_eq!(w.pop_expired(tick(100)), vec!["warm"]); // cur_tick = 100
        w.insert(tick(16_400), "far"); // delta 16300 -> level-1 slot 0 (next rotation)
        w.insert(tick(400), "near"); // level-1 slot 1, this rotation
        assert_eq!(w.next_expiry(), Some(tick(400)), "near entry wins");
        assert_eq!(w.pop_expired(tick(400)), vec!["near"]);
        assert_eq!(w.next_expiry(), Some(tick(16_400)));
        assert_eq!(w.pop_expired(tick(16_400)), vec!["far"]);
    }

    #[test]
    fn snapshot_round_trips_all_levels() {
        let mut w = TimerWheel::new();
        w.insert(t(3), 1u64);
        w.insert(t(500), 2); // level 1
        w.insert(t(60_000), 3); // level 2
        w.insert(t(30 * 60_000), 4); // overflow
        assert_eq!(w.pop_expired(t(3)), vec![1]);
        let mut sw = SnapWriter::new();
        w.snap_save(&mut sw, |p, sw| sw.write_u64(*p));
        let bytes = sw.into_bytes();
        let mut restored: TimerWheel<u64> = TimerWheel::new();
        let mut r = SnapReader::new(&bytes);
        restored.snap_restore(&mut r, |r| r.read_u64()).unwrap();
        assert!(r.is_empty());
        assert_eq!(restored.len(), 3);
        assert_eq!(restored.scheduled_total(), 4);
        let mut ha = mafic_obs::Fnv64::new();
        let mut hb = mafic_obs::Fnv64::new();
        w.hash_state(&mut ha, |p, h| h.write_u64(*p));
        restored.hash_state(&mut hb, |p, h| h.write_u64(*p));
        assert_eq!(ha.finish(), hb.finish());
        assert_eq!(restored.next_expiry(), Some(t(500)));
        assert_eq!(restored.pop_expired(t(30 * 60_000)), vec![2, 3, 4]);
    }

    #[test]
    fn interleaved_insert_and_pop_keeps_count() {
        let mut w = TimerWheel::new();
        w.insert(t(10), 1);
        assert_eq!(w.pop_expired(t(10)), vec![1]);
        w.insert(t(700), 2); // level 1 relative to tick ~10ms
        w.insert(t(20), 3);
        assert_eq!(w.len(), 2);
        assert_eq!(w.pop_expired(t(700)), vec![3, 2]);
        assert_eq!(w.scheduled_total(), 3);
    }
}
