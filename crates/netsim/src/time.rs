//! Simulation clock types.
//!
//! The simulator uses a discrete 64-bit nanosecond clock. [`SimTime`] is an
//! absolute instant since simulation start; [`SimDuration`] is a span.
//! Both are plain newtypes over `u64`, so arithmetic is exact and event
//! ordering is total — two properties the deterministic replay tests rely
//! on (floating-point clocks make event order seed-dependent).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute simulation instant, in nanoseconds since simulation start.
///
/// # Example
///
/// ```
/// use mafic_netsim::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_secs_f64(), 0.005);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation start instant.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as "never" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from seconds (fractional allowed).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time {secs}");
        SimTime((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds since simulation start.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (for reporting only).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    #[must_use]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span from microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span from milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True for the zero-length span.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the span by a non-negative float factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Element-wise maximum.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Element-wise minimum.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Span between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "time went backwards: {self} - {rhs}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics on division by zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.1}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        let u = t + SimDuration::from_millis(5);
        assert_eq!(u - t, SimDuration::from_millis(5));
        assert_eq!(u.saturating_since(SimTime::MAX), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(2.0), SimDuration::from_millis(200));
        assert_eq!(d * 3, SimDuration::from_millis(300));
        assert_eq!(d / 2, SimDuration::from_millis(50));
        assert_eq!(
            d.max(SimDuration::from_millis(150)),
            SimDuration::from_millis(150)
        );
        assert_eq!(d.min(SimDuration::from_millis(150)), d);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_rejected() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert!(a < b);
        assert!(SimDuration::from_nanos(1) < SimDuration::from_nanos(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_nanos(10).to_string(), "10ns");
        assert_eq!(SimDuration::from_micros(10).to_string(), "10.0us");
        assert_eq!(SimDuration::from_millis(10).to_string(), "10.0ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_secs_f64(1.25).to_string(), "1.250000s");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert!(SimTime::ZERO
            .checked_add(SimDuration::from_secs(1))
            .is_some());
    }
}
