//! # mafic-lint
//!
//! Self-contained static analysis enforcing the workspace's replay,
//! layering, and unsafe-code contracts — the rules ARCHITECTURE.md
//! states in prose, checked mechanically before a digest gate can
//! flicker with nothing to bisect.
//!
//! The pass lexes every in-scope Rust file into a token stream (an
//! in-house lexer handling raw strings, nested block comments, and the
//! `'a`-lifetime vs `'x'`-char ambiguity, so rules never fire inside
//! strings or comments) and feeds a rule engine:
//!
//! | rule id         | contract |
//! |-----------------|----------|
//! | `nondet`        | no wall clocks, threads, ambient env/RNG, random hasher state, pointer formatting, or hash-container dodges outside sanctioned files |
//! | `stdout-purity` | no `println!`/`print!` in library crates (figure stdout is byte-compared in CI) |
//! | `float-ord`     | no `partial_cmp` on sort/event keys; use `total_cmp` |
//! | `unsafe-code`   | `unsafe` only in the sanctioned inventory, each with a `// SAFETY:` comment |
//! | `layering`      | manifest dependency sections must match the crate DAG (no back-edges) |
//! | `lib-attrs`     | crate roots pin `#![forbid(unsafe_code)]` + `#![deny(missing_docs)]` |
//! | `pragma`        | suppressions must be well-formed and actually used |
//!
//! A finding is suppressed only by a justified inline pragma on the
//! same line or the line above:
//!
//! ```text
//! // mafic-lint: allow(float-ord) -- keys proven finite and distinct here
//! ```
//!
//! Every pragma is inventoried in the report, and an unused pragma is
//! itself a finding, so the suppression surface stays auditable.
//!
//! The pass runs three ways: `cargo run -p mafic-lint -- --ci` (the CI
//! job), the workspace test `tests/lint_clean.rs` (tier-1 catches
//! violations offline), and as a library for fixture tests.
//!
//! ## Example
//!
//! ```
//! use mafic_lint::{lint_source, LintConfig, RuleId};
//!
//! let cfg = LintConfig::workspace();
//! let src = "fn t() { let _ = std::time::Instant::now(); }";
//! let (findings, _) = lint_source("crates/netsim/src/sim.rs", src, &cfg);
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, RuleId::Nondet);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

pub use config::{classify, CrateLayer, FileClass, LintConfig};
pub use lexer::{lex, Token, TokenKind};
pub use report::{Finding, LintReport, PragmaEntry, RuleId};
pub use rules::{lint_manifest, lint_source};
pub use walk::lint_workspace;
