//! `mafic_trace` — run-ledger inspector.
//!
//! ```text
//! mafic_trace show <ledger.jsonl>            pretty-print a ledger
//! mafic_trace diff <left.jsonl> <right.jsonl>  first diverging interval/component
//! mafic_trace tail <ledger.jsonl> [n]        last n embedded trace events
//! mafic_trace snapshot <file.snap>           checkpoint header + hash table
//! ```
//!
//! `diff` exits 1 when the ledgers diverge (and prints each ledger's
//! embedded trace tail around the divergence point), 0 when identical,
//! 2 on usage or I/O errors — so CI can gate on it directly.
//! `snapshot` exits 1 when the bytes fail to decode (truncation, bad
//! magic, checksum mismatch — the error names the offending section).

use mafic_obs::{diff_ledgers, Divergence, RunLedger, Snapshot};
use std::fmt::Write as _;
use std::process::ExitCode;

fn load(path: &str) -> Result<RunLedger, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    RunLedger::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))
}

fn show(ledger: &RunLedger) {
    let h = &ledger.header;
    println!(
        "ledger v{} · crate {} · seed {} · spec {:016x} · workers {}",
        h.ledger_version, h.crate_version, h.seed, h.spec_fingerprint, h.workers
    );
    println!(
        "{} components, {} counters, {} intervals, {} trace lines",
        ledger.components.len(),
        ledger.counters.len(),
        ledger.intervals.len(),
        ledger.trace_tail.len()
    );
    println!("components: {}", ledger.components.join(", "));
    if !ledger.counters.is_empty() {
        println!("counters:   {}", ledger.counters.join(", "));
    }
    for rec in &ledger.intervals {
        let mut line = format!(
            "interval {:>4} t={:>8.3}s",
            rec.index,
            rec.at_nanos as f64 / 1e9
        );
        for (name, hash) in ledger.components.iter().zip(&rec.hashes) {
            line.push_str(&format!("  {name}={hash:016x}"));
        }
        println!("{line}");
        if !rec.counters.is_empty() {
            let counters: Vec<String> = ledger
                .counters
                .iter()
                .zip(&rec.counters)
                .map(|(n, v)| format!("{n}={v}"))
                .collect();
            println!("              {}", counters.join(" "));
        }
    }
}

fn tail(ledger: &RunLedger, n: usize) {
    if ledger.trace_tail.is_empty() {
        println!("(no embedded trace — record the run with tracing enabled)");
        return;
    }
    let start = ledger.trace_tail.len().saturating_sub(n);
    for line in &ledger.trace_tail[start..] {
        println!("{line}");
    }
}

fn diff(left: &RunLedger, right: &RunLedger) -> ExitCode {
    let report = diff_ledgers(left, right);
    print!("{report}");
    if report.is_identical() {
        println!("({} intervals compared)", left.intervals.len());
        return ExitCode::SUCCESS;
    }
    if let Divergence::FirstDivergence { at_nanos, .. } = report.finding {
        // Show each side's trace tail around the divergence point so the
        // first wrong event is one read away.
        for (name, ledger) in [("left", left), ("right", right)] {
            let around: Vec<&String> = ledger
                .trace_tail
                .iter()
                .filter(|line| {
                    trace_line_nanos(line).is_none_or(|t| t <= at_nanos.saturating_add(1))
                })
                .collect();
            if !around.is_empty() {
                println!("--- {name} trace tail up to divergence ---");
                for line in around.iter().rev().take(16).rev() {
                    println!("{line}");
                }
            }
        }
    }
    ExitCode::FAILURE
}

/// Renders a decoded checkpoint: the identity header, then the
/// embedded per-component hash table restore verifies against, then
/// the payload sections actually present.
fn render_snapshot(snap: &Snapshot) -> String {
    let h = &snap.header;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "snapshot v{} · crate {} · seed {} · spec {:016x}",
        h.snap_version, h.crate_version, h.seed, h.spec_fingerprint
    );
    let _ = writeln!(
        out,
        "captured at t={:.3}s (interval {})",
        h.at_nanos as f64 / 1e9,
        h.interval_index
    );
    let _ = writeln!(
        out,
        "{} component hashes, {} sections",
        snap.component_hashes.len(),
        snap.section_labels().len()
    );
    for (label, hash) in &snap.component_hashes {
        let _ = writeln!(out, "  {label:<24} {hash:016x}");
    }
    let _ = writeln!(out, "sections: {}", snap.section_labels().join(", "));
    out
}

/// Best-effort parse of the `t=<secs>` prefix the netsim trace renderer
/// emits; `None` keeps the line (unknown format beats a dropped clue).
fn trace_line_nanos(line: &str) -> Option<u64> {
    let rest = line.strip_prefix("t=")?;
    let end = rest.find(|c: char| !c.is_ascii_digit() && c != '.')?;
    let secs: f64 = rest[..end].parse().ok()?;
    Some((secs * 1e9) as u64)
}

fn usage() -> ExitCode {
    eprintln!("usage: mafic_trace show <ledger.jsonl>");
    eprintln!("       mafic_trace diff <left.jsonl> <right.jsonl>");
    eprintln!("       mafic_trace tail <ledger.jsonl> [n]");
    eprintln!("       mafic_trace snapshot <file.snap>");
    ExitCode::from(2)
}

/// Loads, decodes, and prints a checkpoint file. Decode failures exit 1
/// with the typed [`mafic_obs::SnapError`] (which names the corrupt
/// section), I/O failures exit 2 like every other subcommand.
fn snapshot_cmd(path: &str) -> Result<ExitCode, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    match Snapshot::decode(&bytes) {
        Ok(snap) => {
            print!("{}", render_snapshot(&snap));
            Ok(ExitCode::SUCCESS)
        }
        Err(e) => {
            eprintln!("mafic_trace: {path}: {e}");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("show") => match args.get(1) {
            Some(path) => load(path).map(|l| {
                show(&l);
                ExitCode::SUCCESS
            }),
            None => return usage(),
        },
        Some("tail") => match args.get(1) {
            Some(path) => {
                let n = args
                    .get(2)
                    .and_then(|s| s.parse::<usize>().ok())
                    .unwrap_or(32);
                load(path).map(|l| {
                    tail(&l, n);
                    ExitCode::SUCCESS
                })
            }
            None => return usage(),
        },
        Some("snapshot") => match args.get(1) {
            Some(path) => snapshot_cmd(path),
            None => return usage(),
        },
        Some("diff") => match (args.get(1), args.get(2)) {
            (Some(a), Some(b)) => match (load(a), load(b)) {
                (Ok(l), Ok(r)) => Ok(diff(&l, &r)),
                (Err(e), _) | (_, Err(e)) => Err(e),
            },
            _ => return usage(),
        },
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("mafic_trace: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mafic_obs::SnapshotHeader;

    fn fixture() -> Snapshot {
        let mut snap = Snapshot::new(SnapshotHeader {
            snap_version: 1,
            crate_version: "0.1.0".to_string(),
            seed: 77,
            spec_fingerprint: 0x00AB_CDEF_0000_0001,
            at_nanos: 1_200_000_000,
            interval_index: 12,
        });
        snap.component_hashes
            .push(("netsim/core".to_string(), 0xDEAD_BEEF_0000_0001));
        snap.component_hashes
            .push(("dom0/coord".to_string(), 0x0123_4567_89AB_CDEF));
        snap.add_section("netsim/core", vec![1, 2, 3]);
        snap.add_section("workload/run", vec![4, 5]);
        snap
    }

    #[test]
    fn render_prints_header_identity_and_capture_instant() {
        let out = render_snapshot(&fixture());
        assert!(out.contains("snapshot v1 · crate 0.1.0 · seed 77"), "{out}");
        assert!(out.contains("spec 00abcdef00000001"), "{out}");
        assert!(out.contains("captured at t=1.200s (interval 12)"), "{out}");
    }

    #[test]
    fn render_lists_every_component_hash_and_section() {
        let out = render_snapshot(&fixture());
        assert!(out.contains("2 component hashes, 2 sections"), "{out}");
        assert!(out.contains("netsim/core"), "{out}");
        assert!(out.contains("deadbeef00000001"), "{out}");
        assert!(out.contains("dom0/coord"), "{out}");
        assert!(out.contains("0123456789abcdef"), "{out}");
        assert!(out.contains("sections: netsim/core, workload/run"), "{out}");
    }

    #[test]
    fn render_round_trips_through_the_wire_format() {
        let snap = fixture();
        let decoded = Snapshot::decode(&snap.encode()).expect("fixture decodes");
        assert_eq!(render_snapshot(&snap), render_snapshot(&decoded));
    }
}
