//! Ablation studies beyond the paper's figures.
//!
//! These quantify the design choices DESIGN.md calls out:
//!
//! * MAFIC vs the proportional baseline (the motivating comparison),
//! * probe timer multiplier (1×, 2×, 4× RTT),
//! * hashed vs full flow labels (memory and collision cost),
//! * LogLog precision vs traffic-matrix accuracy.

use crate::engine::EngineConfig;
use crate::figure::FigureData;
use crate::sweep::run_averaged;
use mafic::{DropPolicy, LabelMode};
use mafic_loglog::{LogLog, Precision};
use mafic_workload::ScenarioSpec;

/// MAFIC vs proportional baseline across the paper's metrics.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn policy_comparison(cfg: &EngineConfig) -> Result<FigureData, String> {
    let mut fig = FigureData::new(
        "Ablation A",
        "MAFIC vs proportional dropping (the [2] baseline)",
        "metric index (1=alpha 2=theta_n 3=theta_p 4=Lr 5=beta)",
        "percent",
    );
    for (label, policy) in [
        ("MAFIC", DropPolicy::Mafic),
        ("proportional", DropPolicy::Proportional),
    ] {
        let report = run_averaged(
            &ScenarioSpec {
                policy,
                ..ScenarioSpec::default()
            },
            cfg,
        )?;
        fig.push_series(
            label,
            vec![
                (1.0, report.accuracy_pct),
                (2.0, report.false_negative_pct),
                (3.0, report.false_positive_pct),
                (4.0, report.legit_drop_pct),
                (5.0, report.traffic_reduction_pct),
            ],
        );
    }
    Ok(fig)
}

/// Probe-timer multiplier ablation: 1×, 2× (paper), 4× RTT.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn timer_multiplier(cfg: &EngineConfig) -> Result<FigureData, String> {
    let mut fig = FigureData::new(
        "Ablation B",
        "Probation timer length vs classification quality",
        "timer (x RTT)",
        "percent",
    );
    let mut accuracy = Vec::new();
    let mut legit_drops = Vec::new();
    let mut fpr = Vec::new();
    for mult in [1.0f64, 2.0, 4.0] {
        let report = run_averaged(
            &ScenarioSpec {
                timer_rtt_multiplier: mult,
                ..ScenarioSpec::default()
            },
            cfg,
        )?;
        accuracy.push((mult, report.accuracy_pct));
        legit_drops.push((mult, report.legit_drop_pct));
        fpr.push((mult, report.false_positive_pct));
    }
    fig.push_series("alpha", accuracy);
    fig.push_series("Lr", legit_drops);
    fig.push_series("theta_p", fpr);
    Ok(fig)
}

/// Hashed vs full flow labels — modeled router table memory.
///
/// Since the interned-FlowId refactor, classification state is keyed by
/// exact dense ids in *both* modes, so hashed-label collisions can no
/// longer merge two flows' verdicts (a strict improvement over the
/// paper's hashed tables; the old behavioral comparison would now chart
/// two identical runs). What survives of the paper's trade-off is the
/// storage cost of the label a router keeps per table entry for
/// reporting: 8 bytes hashed vs 12 bytes full. This ablation charts the
/// modeled resident memory of a populated SFT/NFT/PDT set under each
/// label size, across table occupancy.
#[must_use]
pub fn label_mode() -> FigureData {
    use mafic::{FlowTables, PdtReason, SftEntry};
    use mafic_netsim::{Addr, FlowId, FlowKey, SimDuration, SimTime};

    let mut fig = FigureData::new(
        "Ablation C",
        "Hashed vs full flow labels (modeled table memory)",
        "resident flows",
        "table bytes",
    );
    let occupancies = [256usize, 1024, 4096, 16384, 65536];
    let label_bytes = |mode: LabelMode| mode.stored_bytes();
    struct ModeSeries {
        label: &'static str,
        mode: LabelMode,
        points: Vec<(f64, f64)>,
    }
    let mut series = [
        ModeSeries {
            label: "hashed",
            mode: LabelMode::Hashed,
            points: Vec::new(),
        },
        ModeSeries {
            label: "full",
            mode: LabelMode::Full,
            points: Vec::new(),
        },
    ];
    for &n in &occupancies {
        let mut tables = FlowTables::new(n, n, n);
        for i in 0..n {
            let id = FlowId::from_index(i);
            let key = FlowKey::new(Addr::new(i as u32), Addr::new(2), 80, 80);
            match i % 3 {
                0 => tables.sft_insert(
                    id,
                    SftEntry {
                        key,
                        probe_started: SimTime::ZERO,
                        baseline_rate: 0.0,
                        rtt_estimate: SimDuration::from_millis(50),
                        deadline: SimTime::ZERO + SimDuration::from_millis(100),
                        arrivals_since_probe: 0,
                    },
                ),
                1 => tables.nft_insert(id, SimTime::ZERO),
                _ => tables.pdt_insert(id, PdtReason::Unresponsive),
            }
        }
        for s in &mut series {
            s.points
                .push((n as f64, tables.approx_bytes(label_bytes(s.mode)) as f64));
        }
    }
    for s in series {
        fig.push_series(s.label, s.points);
    }
    fig
}

/// LogLog precision vs cardinality estimation error (pure sketch study —
/// the memory/accuracy trade-off behind the pushback traffic matrix).
#[must_use]
pub fn sketch_precision() -> FigureData {
    let mut fig = FigureData::new(
        "Ablation D",
        "LogLog precision vs estimation error (50k distinct items)",
        "registers (bytes)",
        "relative error (%)",
    );
    let truth = 50_000u64;
    let mut points = Vec::new();
    for p in Precision::all() {
        let mut sketch = LogLog::new(p);
        for i in 0..truth {
            sketch.insert_u64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        let err = (sketch.estimate() - truth as f64).abs() / truth as f64 * 100.0;
        points.push((p.registers() as f64, err));
    }
    fig.push_series("LogLog", points);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_precision_error_shrinks_with_registers() {
        let fig = sketch_precision();
        let points = &fig.series[0].points;
        assert_eq!(points.len(), Precision::all().len());
        // Error at the largest precision must undercut the smallest.
        let first = points.first().unwrap().1;
        let last = points.last().unwrap().1;
        assert!(
            last < first,
            "error did not shrink: {first:.2}% -> {last:.2}%"
        );
    }
}
