//! Time-series extraction for the flow-bandwidth figures (Fig. 4b).

use mafic_netsim::StatsCollector;

/// One point of the victim-side bandwidth series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthPoint {
    /// Bin start time in seconds.
    pub time_s: f64,
    /// Legitimate throughput in bytes/s.
    pub legit_bps: f64,
    /// Attack throughput in bytes/s.
    pub attack_bps: f64,
}

impl BandwidthPoint {
    /// Total throughput in bytes/s.
    #[must_use]
    pub fn total_bps(&self) -> f64 {
        self.legit_bps + self.attack_bps
    }
}

/// Extracts the victim arrival-bandwidth series from a run's statistics.
///
/// Returns an empty vector when no victim watch was configured.
///
/// # Example
///
/// ```
/// use mafic_metrics::victim_bandwidth_series;
/// use mafic_netsim::StatsCollector;
///
/// let series = victim_bandwidth_series(&StatsCollector::new());
/// assert!(series.is_empty());
/// ```
#[must_use]
pub fn victim_bandwidth_series(stats: &StatsCollector) -> Vec<BandwidthPoint> {
    let Some(bin) = stats.victim_bin_width() else {
        return Vec::new();
    };
    let width_s = bin.as_secs_f64();
    stats
        .victim_bins()
        .iter()
        .enumerate()
        .map(|(i, b)| BandwidthPoint {
            time_s: i as f64 * width_s,
            legit_bps: b.legit_bytes as f64 / width_s,
            attack_bps: b.attack_bytes as f64 / width_s,
        })
        .collect()
}

/// Extracts the *offered load* series — arrivals at the watched router
/// destined to the victim, before the defense drops them. This is the
/// "flow bandwidth" quantity of the paper's Fig. 4b.
///
/// Returns an empty vector when no arrival watch was configured.
#[must_use]
pub fn victim_arrival_series(stats: &StatsCollector) -> Vec<BandwidthPoint> {
    let Some(bin) = stats.arrival_bin_width() else {
        return Vec::new();
    };
    let width_s = bin.as_secs_f64();
    stats
        .arrival_bins()
        .iter()
        .enumerate()
        .map(|(i, b)| BandwidthPoint {
            time_s: i as f64 * width_s,
            legit_bps: b.legit_bytes as f64 / width_s,
            attack_bps: b.attack_bytes as f64 / width_s,
        })
        .collect()
}

/// Downsamples a series by averaging groups of `factor` consecutive
/// points (the paper's Fig. 4b plots coarse-grained bandwidth).
///
/// # Panics
///
/// Panics if `factor` is zero.
#[must_use]
pub fn downsample(series: &[BandwidthPoint], factor: usize) -> Vec<BandwidthPoint> {
    assert!(factor > 0, "factor must be positive");
    series
        .chunks(factor)
        .map(|chunk| {
            let n = chunk.len() as f64;
            BandwidthPoint {
                time_s: chunk[0].time_s,
                legit_bps: chunk.iter().map(|p| p.legit_bps).sum::<f64>() / n,
                attack_bps: chunk.iter().map(|p| p.attack_bps).sum::<f64>() / n,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mafic_netsim::{
        Addr, AgentId, FlowKey, NodeId, Packet, PacketKind, Provenance, SimDuration, SimTime,
    };

    fn delivered(stats: &mut StatsCollector, at_ms: u64, attack: bool) {
        let p = Packet {
            id: at_ms,
            key: FlowKey::new(Addr::new(1), Addr::new(2), 1, 80),
            kind: PacketKind::Udp,
            size_bytes: 1000,
            created_at: SimTime::ZERO,
            provenance: Provenance {
                origin: AgentId::from_index(0),
                is_attack: attack,
            },
            hops: 0,
        };
        stats.on_delivered(
            &p,
            NodeId::from_index(3),
            SimTime::ZERO + SimDuration::from_millis(at_ms),
        );
    }

    #[test]
    fn series_converts_bins_to_rates() {
        let mut s = StatsCollector::new();
        s.watch_victim(NodeId::from_index(3), SimDuration::from_millis(100));
        delivered(&mut s, 10, false);
        delivered(&mut s, 20, false);
        delivered(&mut s, 150, true);
        let series = victim_bandwidth_series(&s);
        assert_eq!(series.len(), 2);
        // Bin 0: 2000 bytes / 0.1 s = 20 kB/s legit.
        assert!((series[0].legit_bps - 20_000.0).abs() < 1e-6);
        assert_eq!(series[0].attack_bps, 0.0);
        assert!((series[1].attack_bps - 10_000.0).abs() < 1e-6);
        assert!((series[1].time_s - 0.1).abs() < 1e-9);
        assert!((series[1].total_bps() - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn downsample_averages_chunks() {
        let series = vec![
            BandwidthPoint {
                time_s: 0.0,
                legit_bps: 10.0,
                attack_bps: 0.0,
            },
            BandwidthPoint {
                time_s: 0.1,
                legit_bps: 30.0,
                attack_bps: 10.0,
            },
            BandwidthPoint {
                time_s: 0.2,
                legit_bps: 50.0,
                attack_bps: 20.0,
            },
        ];
        let coarse = downsample(&series, 2);
        assert_eq!(coarse.len(), 2);
        assert!((coarse[0].legit_bps - 20.0).abs() < 1e-9);
        assert!((coarse[0].attack_bps - 5.0).abs() < 1e-9);
        assert!((coarse[1].legit_bps - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn zero_factor_rejected() {
        let _ = downsample(&[], 0);
    }
}
