//! # mafic-suite
//!
//! Facade crate bundling the complete MAFIC reproduction (Chen, Kwok &
//! Hwang, "MAFIC: Adaptive Packet Dropping for Cutting Malicious Flows
//! to Push Back DDoS Attacks", ICDCSW 2005):
//!
//! * [`netsim`] — the deterministic discrete-event network simulator,
//! * [`transport`] — TCP Reno-style senders/sinks and unresponsive
//!   attack zombies,
//! * [`topology`] — protected-domain builders and the address plan,
//! * [`loglog`] — LogLog sketches and the set-union counting pushback
//!   pipeline,
//! * [`core`] — the MAFIC algorithm (SFT/NFT/PDT, probing, adaptive
//!   dropping) plus the proportional baseline, the aggregate rate
//!   limiter, and the per-domain [`core::DefensePolicy`] surface,
//! * [`pushback`] — inter-domain cascaded pushback: per-domain
//!   coordinators, rate meters, and the packet-borne control channel
//!   (heterogeneous policies and partial deployment included),
//! * [`metrics`] — the paper's α/β/θp/θn/Lr metrics, plus residual
//!   attack rate and collateral damage for the multi-domain scenarios,
//! * [`obs`] — the run ledger: per-interval chained state hashes,
//!   JSONL export, and the divergence differ behind `mafic_trace`,
//! * [`workload`] — scenario generation and the experiment runner,
//! * [`adversary`] — closed-loop adaptive attack strategies (source
//!   rotation, attestation shaping, pulse tuning, carpet bombing)
//!   red-teaming the defense from the attacker's side,
//! * [`experiments`] — per-figure regeneration harnesses.
//!
//! # Quickstart
//!
//! ```no_run
//! use mafic_suite::workload::{run_spec, ScenarioSpec};
//!
//! let outcome = run_spec(ScenarioSpec::default()).unwrap();
//! assert!(outcome.report.accuracy_pct > 99.0);
//! println!("{}", outcome.report);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_docs)]

pub use mafic as core;
pub use mafic_adversary as adversary;
pub use mafic_experiments as experiments;
pub use mafic_loglog as loglog;
pub use mafic_metrics as metrics;
pub use mafic_netsim as netsim;
pub use mafic_obs as obs;
pub use mafic_pushback as pushback;
pub use mafic_topology as topology;
pub use mafic_transport as transport;
pub use mafic_workload as workload;
