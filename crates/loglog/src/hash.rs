//! 64-bit hashing helpers shared by the sketches and by MAFIC's hashed flow
//! labels.
//!
//! The sketches only need a hash whose bits are close to uniform and
//! independent of the input structure. We use the SplitMix64 finalizer for
//! integers (a well-studied bijective mixer) and FNV-1a followed by the same
//! finalizer for byte strings. Both are deterministic across runs, which the
//! simulation harness relies on for reproducibility.

/// Mixes a 64-bit value through the SplitMix64 finalizer.
///
/// The output is a bijection of the input with good avalanche behaviour, so
/// distinct packet identifiers map to well-spread hash values.
///
/// # Example
///
/// ```
/// let a = mafic_loglog::hash::mix64(1);
/// let b = mafic_loglog::hash::mix64(2);
/// assert_ne!(a, b);
/// ```
#[inline]
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Combines two 64-bit values into one well-mixed value.
///
/// Used to derive flow labels from multi-word keys without allocating.
#[inline]
#[must_use]
pub fn mix2(a: u64, b: u64) -> u64 {
    mix64(a ^ mix64(b))
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Hashes a byte slice with FNV-1a and finalizes with [`mix64`].
///
/// FNV-1a alone has detectable bit biases for short keys; the final mix
/// removes them, which matters because the sketches consume the *leading*
/// bits for bucket selection.
#[must_use]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    mix64(h)
}

/// Position of the first 1-bit (1-based) in the value, scanning from the
/// most significant bit, as used by LogLog's rank function `ρ(w)`.
///
/// Returns `bits + 1` when the value is zero within the inspected `bits`-bit
/// suffix window (matching the convention of Durand–Flajolet).
#[inline]
#[must_use]
pub fn rho(value: u64, bits: u32) -> u8 {
    debug_assert!(bits <= 64);
    if bits == 0 {
        return 1;
    }
    // Consider only the low `bits` bits, aligned to the top of a u64, so
    // leading_zeros counts within the window.
    let window = value << (64 - bits);
    let lz = window.leading_zeros();
    if lz >= bits {
        (bits + 1) as u8
    } else {
        (lz + 1) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
        // Avalanche sanity: flipping one input bit flips many output bits.
        let flips = (mix64(0) ^ mix64(1)).count_ones();
        assert!(flips > 16, "weak avalanche: {flips} bits");
    }

    #[test]
    fn mix2_is_order_sensitive() {
        assert_ne!(mix2(1, 2), mix2(2, 1));
    }

    #[test]
    fn hash_bytes_differs_on_content() {
        assert_ne!(hash_bytes(b"flow-a"), hash_bytes(b"flow-b"));
        assert_eq!(hash_bytes(b""), hash_bytes(b""));
    }

    #[test]
    fn rho_counts_leading_zeros_in_window() {
        // Window of 8 bits, value with top window bit set => rank 1.
        assert_eq!(rho(0b1000_0000, 8), 1);
        assert_eq!(rho(0b0100_0000, 8), 2);
        assert_eq!(rho(0b0000_0001, 8), 8);
        assert_eq!(rho(0, 8), 9, "all-zero window saturates at bits+1");
    }

    #[test]
    fn rho_full_width() {
        assert_eq!(rho(1u64 << 63, 64), 1);
        assert_eq!(rho(1, 64), 64);
        assert_eq!(rho(0, 64), 65);
    }

    #[test]
    fn rho_zero_bits_window() {
        assert_eq!(rho(0xFFFF, 0), 1);
    }
}
