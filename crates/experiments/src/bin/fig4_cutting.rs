//! Regenerates Fig. 4(a) (traffic reduction) and Fig. 4(b) (bandwidth
//! over time).

use mafic_experiments::{figures, EngineConfig};

fn main() {
    let cfg = EngineConfig::from_env_or_exit();
    for result in [figures::fig4a(&cfg), figures::fig4b(&cfg)] {
        match result {
            Ok(fig) => println!("{fig}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}
