//! The simulator: arenas, event loop, and dispatch.
//!
//! Single-threaded and deterministic: identical builder calls plus an
//! identical seed replay the exact same event sequence. All mutation
//! funnels through the event loop; agents and filters communicate with
//! the simulator exclusively through buffered commands.

use crate::agent::{Agent, AgentCommand, AgentCtx};
use crate::arena::{PacketArena, PacketRef};
use crate::event::{EventKind, FilterControl, Scheduler};
use crate::filter::{FilterAction, FilterCommand, FilterCtx, PacketEnv, PacketFilter};
use crate::flows::{FlowId, FlowInterner};
use crate::ids::{Addr, AgentId, LinkId, NodeId};
use crate::link::{EnqueueOutcome, Link, LinkSpec};
use crate::node::Node;
use crate::packet::{DropReason, FlowKey, Packet};
use crate::stats::StatsCollector;
use crate::time::SimTime;
use crate::trace::{TraceBuffer, TraceEvent};
use crate::wheel::TimerWheel;
use mafic_obs::SnapError;

/// Payload of one armed flow timer: where to deliver the fire.
#[derive(Debug, Clone, Copy)]
struct FlowTimerFire {
    node: NodeId,
    filter_index: usize,
    flow: FlowId,
    kind: u16,
}

/// Summary of one simulation run (event-loop accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Events processed by the loop.
    pub events_processed: u64,
    /// Events ever scheduled.
    pub events_scheduled: u64,
    /// Final simulation time reached.
    pub ended_at_nanos: u64,
}

/// The discrete-event network simulator.
///
/// # Example
///
/// ```
/// use mafic_netsim::*;
///
/// let mut sim = Simulator::new(7);
/// let a = sim.add_node("a");
/// let b = sim.add_node("b");
/// let (ab, _ba) = sim.add_duplex_link(a, b, LinkSpec::default());
/// let dst = Addr::from_octets(10, 0, 0, 2);
/// sim.add_route(a, dst, ab);
/// let sink = sim.add_agent(b, Box::new(CountingSink::new()), SimTime::ZERO);
/// sim.bind_local_addr(b, dst, sink);
/// // Inject one packet at node a destined to the sink.
/// let key = FlowKey::new(Addr::from_octets(10, 0, 0, 1), dst, 9, 80);
/// sim.inject_packet(a, key, PacketKind::Udp, 500, false, SimTime::ZERO);
/// sim.run_until(SimTime::from_secs_f64(1.0));
/// let sink = sim.agent::<CountingSink>(sink).unwrap();
/// assert_eq!(sink.delivered(), 1);
/// ```
pub struct Simulator {
    nodes: Vec<Node>,
    links: Vec<Link>,
    agents: Vec<Option<Box<dyn Agent>>>,
    agent_home: Vec<NodeId>,
    /// Per-agent memo of the last sent flow's `(key, stats id)`. Senders
    /// emit one flow each, so this skips the interner hash on nearly
    /// every send; a hit always equals what the interner would answer
    /// (interning an already-known key is a pure lookup, so skipping it
    /// cannot change mint order).
    agent_send_memo: Vec<Option<(FlowKey, FlowId)>>,
    scheduler: Scheduler,
    /// Hierarchical timer wheel carrying filter flow-timers.
    wheel: TimerWheel<FlowTimerFire>,
    /// The domain-wide flow interner; every packet's 4-tuple is interned
    /// exactly once per node arrival and the dense id rides along in
    /// [`PacketEnv`] / [`AgentCtx`].
    flows: FlowInterner,
    /// In-flight packet storage: events, link queues, and delivery FIFOs
    /// hold 4-byte [`PacketRef`] handles into this slab.
    arena: PacketArena,
    now: SimTime,
    next_packet_id: u64,
    events_processed: u64,
    stats: StatsCollector,
    trace: Option<TraceBuffer>,
    link_down: Vec<bool>,
    seed: u64,
    /// Recycled command scratch buffers (a stack, not a single buffer:
    /// agent loopback deliveries re-enter dispatch and need a fresh one).
    filter_bufs: Vec<Vec<FilterCommand>>,
    agent_bufs: Vec<Vec<AgentCommand>>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .field("agents", &self.agents.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl Simulator {
    /// Creates an empty simulator.
    ///
    /// The seed is recorded for reporting; deterministic components (TCP
    /// agents, droppers) each derive their own RNG from seeds handed out
    /// by the workload layer, so the simulator itself stays RNG-free.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Simulator {
            nodes: Vec::new(),
            links: Vec::new(),
            agents: Vec::new(),
            agent_home: Vec::new(),
            agent_send_memo: Vec::new(),
            scheduler: Scheduler::new(),
            wheel: TimerWheel::new(),
            flows: FlowInterner::new(),
            arena: PacketArena::new(),
            now: SimTime::ZERO,
            next_packet_id: 0,
            events_processed: 0,
            stats: StatsCollector::new(),
            trace: None,
            link_down: Vec::new(),
            seed,
            filter_bufs: Vec::new(),
            agent_bufs: Vec::new(),
        }
    }

    /// Enables the bounded event trace (drops, deliveries, control).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceBuffer::new(capacity));
    }

    /// The event trace, if enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    fn trace_record(&mut self, event: TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.record(event);
        }
    }

    /// The seed this simulator was created with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The statistics collector (read side).
    #[must_use]
    pub fn stats(&self) -> &StatsCollector {
        &self.stats
    }

    /// The statistics collector (write side: victim watches, flow
    /// declarations).
    pub fn stats_mut(&mut self) -> &mut StatsCollector {
        &mut self.stats
    }

    /// The domain-wide flow interner (read side: id ↔ key resolution).
    #[must_use]
    pub fn flow_interner(&self) -> &FlowInterner {
        &self.flows
    }

    /// Interns `key`, minting a dense [`FlowId`] on first sight. Ids are
    /// stable for the simulator's lifetime.
    pub fn intern_flow(&mut self, key: crate::packet::FlowKey) -> FlowId {
        self.flows.intern(key)
    }

    /// Peak number of packets simultaneously resident in the in-flight
    /// packet storage over the simulator's lifetime (bench observability).
    #[must_use]
    pub fn packet_arena_peak(&self) -> usize {
        self.arena.peak()
    }

    /// Packets currently resident in the in-flight packet storage.
    #[must_use]
    pub fn packet_arena_live(&self) -> usize {
        self.arena.live()
    }

    /// Folds every simulator-owned component into `probe`, one labelled
    /// hash each — the netsim half of the run ledger.
    ///
    /// Components: the core loop counters, the event heap, the timer
    /// wheel (with its `FlowTimerFire` payloads), the packet arena,
    /// every link's queues, and the stats collector. Filters and agents
    /// are *not* hashed here — they are owned boxes behind trait
    /// objects, and the layers that know their concrete types (workload,
    /// pushback) probe them under their own labels.
    pub fn hash_components(&self, probe: &mut mafic_obs::IntervalProbe) {
        use mafic_obs::StateHash as _;
        probe.component("netsim/core", |h| {
            h.write_u64(self.now.as_nanos());
            h.write_u64(self.seed);
            h.write_u64(self.next_packet_id);
            h.write_u64(self.events_processed);
            h.write_usize(self.flows.len());
        });
        probe.component("netsim/scheduler", |h| self.scheduler.hash_state(h));
        probe.component("netsim/wheel", |h| {
            self.wheel.hash_state(h, |fire, h| {
                h.write_u32(fire.node.0);
                h.write_usize(fire.filter_index);
                h.write_usize(fire.flow.index());
                h.write_u16(fire.kind);
            });
        });
        probe.component("netsim/arena", |h| self.arena.hash_state(h));
        probe.component("netsim/links", |h| {
            h.write_usize(self.links.len());
            for link in &self.links {
                link.hash_state(h);
            }
            for &down in &self.link_down {
                h.write_bool(down);
            }
        });
        probe.component("netsim/stats", |h| self.stats.hash_state(h));
    }

    /// Serializes every simulator-owned component into `snapshot`, one
    /// labelled section each — the netsim half of a checkpoint.
    ///
    /// Sections mirror the [`Simulator::hash_components`] labels plus the
    /// pieces excluded from hashing but required to resume (the flow
    /// interner, the trace buffer, and the agent/filter payloads written
    /// through their trait hooks). Pure caches (send memos, link
    /// serialization memos, wheel expiry cache) are not saved; restore
    /// invalidates them.
    pub fn snap_save_into(&self, snapshot: &mut mafic_obs::Snapshot) {
        use mafic_obs::{SnapWriter, SnapshotState as _};
        let mut w = SnapWriter::new();
        w.write_u64(self.now.as_nanos());
        w.write_u64(self.seed);
        w.write_u64(self.next_packet_id);
        w.write_u64(self.events_processed);
        snapshot.add_section("netsim/core", w.into_bytes());

        let mut w = SnapWriter::new();
        self.scheduler.snap_save(&mut w);
        snapshot.add_section("netsim/scheduler", w.into_bytes());

        let mut w = SnapWriter::new();
        self.wheel.snap_save(&mut w, |fire, w| {
            w.write_u32(fire.node.0);
            w.write_usize(fire.filter_index);
            w.write_usize(fire.flow.index());
            w.write_u16(fire.kind);
        });
        snapshot.add_section("netsim/wheel", w.into_bytes());

        let mut w = SnapWriter::new();
        self.arena.snap_save(&mut w);
        snapshot.add_section("netsim/arena", w.into_bytes());

        let mut w = SnapWriter::new();
        w.write_usize(self.links.len());
        for link in &self.links {
            link.snap_save(&mut w);
        }
        for &down in &self.link_down {
            w.write_bool(down);
        }
        snapshot.add_section("netsim/links", w.into_bytes());

        let mut w = SnapWriter::new();
        self.stats.snap_save(&mut w);
        snapshot.add_section("netsim/stats", w.into_bytes());

        let mut w = SnapWriter::new();
        self.flows.snap_save(&mut w);
        snapshot.add_section("netsim/flows", w.into_bytes());

        let mut w = SnapWriter::new();
        match &self.trace {
            Some(trace) => {
                w.write_bool(true);
                trace.snap_save(&mut w);
            }
            None => w.write_bool(false),
        }
        snapshot.add_section("netsim/trace", w.into_bytes());

        let mut w = SnapWriter::new();
        w.write_usize(self.agents.len());
        for agent in &self.agents {
            let agent = agent
                .as_ref()
                .expect("snapshot taken while an agent is dispatching");
            agent.snap_save(&mut w);
        }
        snapshot.add_section("netsim/agents", w.into_bytes());

        let mut w = SnapWriter::new();
        w.write_usize(self.nodes.len());
        for node in &self.nodes {
            w.write_usize(node.filters.len());
            for filter in &node.filters {
                filter.snap_save(&mut w);
            }
        }
        snapshot.add_section("netsim/filters", w.into_bytes());
    }

    /// Overlays all `netsim/*` sections of `snapshot` onto this
    /// simulator, which must have been built by the same deterministic
    /// construction sequence as the snapshotted one (same topology,
    /// agents, filters, watches, and trace configuration).
    ///
    /// # Errors
    ///
    /// [`SnapError::MissingSection`] when a `netsim/*` section is absent,
    /// and [`SnapError::Malformed`] when a section's structure does not
    /// match this simulator (wrong counts, trailing bytes) — both signs
    /// the snapshot came from a differently built scenario.
    pub fn snap_restore_from(&mut self, snapshot: &mafic_obs::Snapshot) -> Result<(), SnapError> {
        use mafic_obs::{SnapReader, SnapshotState as _};
        fn section<'s>(
            snapshot: &'s mafic_obs::Snapshot,
            label: &str,
        ) -> Result<SnapReader<'s>, SnapError> {
            snapshot
                .section(label)
                .map(SnapReader::new)
                .ok_or_else(|| SnapError::MissingSection {
                    section: label.to_string(),
                })
        }
        fn finish(r: &SnapReader<'_>, label: &str) -> Result<(), SnapError> {
            if r.is_empty() {
                Ok(())
            } else {
                Err(SnapError::Malformed(format!(
                    "{label}: {} trailing bytes",
                    r.remaining()
                )))
            }
        }

        let mut r = section(snapshot, "netsim/core")?;
        self.now = SimTime::from_nanos(r.read_u64()?);
        self.seed = r.read_u64()?;
        self.next_packet_id = r.read_u64()?;
        self.events_processed = r.read_u64()?;
        finish(&r, "netsim/core")?;

        let mut r = section(snapshot, "netsim/scheduler")?;
        self.scheduler.snap_restore(&mut r)?;
        finish(&r, "netsim/scheduler")?;

        let mut r = section(snapshot, "netsim/wheel")?;
        self.wheel.snap_restore(&mut r, |r| {
            Ok(FlowTimerFire {
                node: NodeId(r.read_u32()?),
                filter_index: r.read_usize()?,
                flow: FlowId::from_index(r.read_usize()?),
                kind: r.read_u16()?,
            })
        })?;
        finish(&r, "netsim/wheel")?;

        let mut r = section(snapshot, "netsim/arena")?;
        self.arena.snap_restore(&mut r)?;
        finish(&r, "netsim/arena")?;

        let mut r = section(snapshot, "netsim/links")?;
        let n_links = r.read_usize()?;
        if n_links != self.links.len() {
            return Err(SnapError::Malformed(format!(
                "netsim/links: snapshot has {n_links} links, simulator has {}",
                self.links.len()
            )));
        }
        for link in &mut self.links {
            link.snap_restore(&mut r)?;
        }
        for down in &mut self.link_down {
            *down = r.read_bool()?;
        }
        finish(&r, "netsim/links")?;

        let mut r = section(snapshot, "netsim/stats")?;
        self.stats.snap_restore(&mut r)?;
        finish(&r, "netsim/stats")?;

        let mut r = section(snapshot, "netsim/flows")?;
        self.flows.snap_restore(&mut r)?;
        finish(&r, "netsim/flows")?;

        let mut r = section(snapshot, "netsim/trace")?;
        let has_trace = r.read_bool()?;
        match (&mut self.trace, has_trace) {
            (Some(trace), true) => trace.snap_restore(&mut r)?,
            (None, false) => {}
            (local, saved) => {
                return Err(SnapError::Malformed(format!(
                    "netsim/trace: snapshot traced={saved}, simulator traced={}",
                    local.is_some()
                )));
            }
        }
        finish(&r, "netsim/trace")?;

        let mut r = section(snapshot, "netsim/agents")?;
        let n_agents = r.read_usize()?;
        if n_agents != self.agents.len() {
            return Err(SnapError::Malformed(format!(
                "netsim/agents: snapshot has {n_agents} agents, simulator has {}",
                self.agents.len()
            )));
        }
        for agent in &mut self.agents {
            let agent = agent
                .as_mut()
                .expect("restore entered while an agent is dispatching");
            agent.snap_restore(&mut r)?;
        }
        finish(&r, "netsim/agents")?;

        let mut r = section(snapshot, "netsim/filters")?;
        let n_nodes = r.read_usize()?;
        if n_nodes != self.nodes.len() {
            return Err(SnapError::Malformed(format!(
                "netsim/filters: snapshot has {n_nodes} nodes, simulator has {}",
                self.nodes.len()
            )));
        }
        for node in &mut self.nodes {
            let n_filters = r.read_usize()?;
            if n_filters != node.filters.len() {
                return Err(SnapError::Malformed(format!(
                    "netsim/filters: snapshot has {n_filters} filters on {}, simulator has {}",
                    node.name,
                    node.filters.len()
                )));
            }
            for filter in &mut node.filters {
                filter.snap_restore(&mut r)?;
            }
        }
        finish(&r, "netsim/filters")?;

        // Invalidate pure caches; each repopulates on first use with
        // values identical to what the snapshotted run held.
        for memo in &mut self.agent_send_memo {
            *memo = None;
        }
        Ok(())
    }

    /// Renders the last `n` trace events (oldest-first) as display
    /// strings, or an empty vec when tracing is disabled.
    pub fn trace_tail(&self, n: usize) -> Vec<String> {
        let Some(trace) = self.trace.as_ref() else {
            return Vec::new();
        };
        let skip = trace.len().saturating_sub(n);
        trace.iter().skip(skip).map(|ev| ev.to_string()).collect()
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node count fits u32"));
        self.nodes.push(Node::new(id, name.into()));
        id
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The human-readable name of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a valid id for this simulator.
    #[must_use]
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.index()].name
    }

    /// Adds a simplex link `from → to`.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) -> LinkId {
        let id = LinkId(u32::try_from(self.links.len()).expect("link count fits u32"));
        self.links.push(Link::new(from, to, spec));
        self.link_down.push(false);
        id
    }

    /// Takes a link administratively down: packets offered to it are
    /// dropped (`NoRoute`) until [`Simulator::set_link_up`]. Failure
    /// injection for robustness tests.
    ///
    /// # Panics
    ///
    /// Panics if `link` is not a valid id.
    pub fn set_link_down(&mut self, link: LinkId) {
        self.link_down[link.index()] = true;
    }

    /// Restores a failed link.
    ///
    /// # Panics
    ///
    /// Panics if `link` is not a valid id.
    pub fn set_link_up(&mut self, link: LinkId) {
        self.link_down[link.index()] = false;
    }

    /// True if the link is administratively down.
    ///
    /// # Panics
    ///
    /// Panics if `link` is not a valid id.
    #[must_use]
    pub fn link_is_down(&self, link: LinkId) -> bool {
        self.link_down[link.index()]
    }

    /// Adds a duplex link as two simplex links; returns `(from→to, to→from)`.
    pub fn add_duplex_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) -> (LinkId, LinkId) {
        (self.add_link(a, b, spec), self.add_link(b, a, spec))
    }

    /// The endpoints `(from, to)` of a link.
    ///
    /// # Panics
    ///
    /// Panics if `link` is not a valid id.
    #[must_use]
    pub fn link_endpoints(&self, link: LinkId) -> (NodeId, NodeId) {
        let l = &self.links[link.index()];
        (l.from, l.to)
    }

    /// Current queue occupancy of a link (excluding the packet on the
    /// wire) — congestion observability for tests and examples.
    ///
    /// # Panics
    ///
    /// Panics if `link` is not a valid id.
    #[must_use]
    pub fn link_queue_depth(&self, link: LinkId) -> usize {
        self.links[link.index()].queue_len(self.now)
    }

    /// True if the link is currently serializing a packet.
    ///
    /// # Panics
    ///
    /// Panics if `link` is not a valid id.
    #[must_use]
    pub fn link_busy(&self, link: LinkId) -> bool {
        self.links[link.index()].is_busy(self.now)
    }

    /// Installs a host route on `node`: packets to `dst` leave via `via`.
    ///
    /// # Panics
    ///
    /// Panics if `via` does not originate at `node`.
    pub fn add_route(&mut self, node: NodeId, dst: Addr, via: LinkId) {
        assert_eq!(
            self.links[via.index()].from,
            node,
            "route via a link that does not start at {node}"
        );
        self.nodes[node.index()].add_route(dst, via);
    }

    /// Sets the default route of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `via` does not originate at `node`.
    pub fn set_default_route(&mut self, node: NodeId, via: LinkId) {
        assert_eq!(
            self.links[via.index()].from,
            node,
            "default route via a link that does not start at {node}"
        );
        self.nodes[node.index()].set_default_route(Some(via));
    }

    /// Adds an agent on `node`, scheduling its `on_start` at `start_at`.
    pub fn add_agent(&mut self, node: NodeId, agent: Box<dyn Agent>, start_at: SimTime) -> AgentId {
        let id = AgentId(u32::try_from(self.agents.len()).expect("agent count fits u32"));
        self.agents.push(Some(agent));
        self.agent_home.push(node);
        self.agent_send_memo.push(None);
        self.scheduler
            .schedule(start_at, EventKind::AgentStart { agent: id });
        id
    }

    /// Binds `addr` on `node` to `agent` so deliveries reach it.
    pub fn bind_local_addr(&mut self, node: NodeId, addr: Addr, agent: AgentId) {
        self.nodes[node.index()].bind_local(addr, agent);
    }

    /// Appends a filter to `node`'s chain; returns its index.
    pub fn add_filter(&mut self, node: NodeId, filter: Box<dyn PacketFilter>) -> usize {
        let filters = &mut self.nodes[node.index()].filters;
        filters.push(filter);
        filters.len() - 1
    }

    /// Downcasts a filter on `node` for inspection.
    ///
    /// Returns `None` if the index is out of range or the concrete type
    /// does not match.
    #[must_use]
    pub fn filter<T: 'static>(&self, node: NodeId, index: usize) -> Option<&T> {
        self.nodes[node.index()]
            .filters
            .get(index)?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutable variant of [`Simulator::filter`].
    pub fn filter_mut<T: 'static>(&mut self, node: NodeId, index: usize) -> Option<&mut T> {
        self.nodes[node.index()]
            .filters
            .get_mut(index)?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Downcasts an agent for inspection.
    #[must_use]
    pub fn agent<T: 'static>(&self, agent: AgentId) -> Option<&T> {
        self.agents[agent.index()]
            .as_ref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutable variant of [`Simulator::agent`].
    pub fn agent_mut<T: 'static>(&mut self, agent: AgentId) -> Option<&mut T> {
        self.agents[agent.index()]
            .as_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// The node an agent is attached to.
    #[must_use]
    pub fn agent_node(&self, agent: AgentId) -> NodeId {
        self.agent_home[agent.index()]
    }

    /// Schedules a control message for delivery to `node` at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn send_control(&mut self, node: NodeId, msg: FilterControl, at: SimTime) {
        assert!(at >= self.now, "control message scheduled in the past");
        self.scheduler
            .schedule(at, EventKind::Control { node, msg });
    }

    /// Injects a single packet at `node` at time `at` (test helper).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn inject_packet(
        &mut self,
        node: NodeId,
        key: crate::packet::FlowKey,
        kind: crate::packet::PacketKind,
        size_bytes: u32,
        is_attack: bool,
        at: SimTime,
    ) -> u64 {
        assert!(at >= self.now, "packet injected in the past");
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        let packet = Packet {
            id,
            key,
            kind,
            size_bytes,
            created_at: at,
            provenance: crate::packet::Provenance {
                origin: AgentId(u32::MAX),
                is_attack,
            },
            hops: 0,
        };
        let sid = self.stats.flow_id(packet.key);
        self.stats.on_sent_id(sid, &packet);
        let packet = self.arena.alloc(packet, Some(sid));
        self.scheduler
            .schedule(at, EventKind::DeliverToNode { node, packet });
        id
    }

    // ------------------------------------------------------------------
    // Command scratch buffers
    // ------------------------------------------------------------------

    fn take_filter_buf(&mut self) -> Vec<FilterCommand> {
        self.filter_bufs.pop().unwrap_or_default()
    }

    fn put_filter_buf(&mut self, buf: Vec<FilterCommand>) {
        debug_assert!(buf.is_empty(), "filter buffer returned with commands");
        self.filter_bufs.push(buf);
    }

    fn take_agent_buf(&mut self) -> Vec<AgentCommand> {
        self.agent_bufs.pop().unwrap_or_default()
    }

    fn put_agent_buf(&mut self, buf: Vec<AgentCommand>) {
        debug_assert!(buf.is_empty(), "agent buffer returned with commands");
        self.agent_bufs.push(buf);
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// The instant of the next pending event across the heap and the
    /// timer wheel, if any.
    fn next_event_time(&mut self) -> Option<SimTime> {
        match (self.scheduler.peek_time(), self.wheel.next_expiry()) {
            (None, None) => None,
            (Some(h), None) => Some(h),
            (None, Some(w)) => Some(w),
            (Some(h), Some(w)) => Some(h.min(w)),
        }
    }

    /// Fires everything due at `now`: wheel flow-timers first (fixed rule
    /// — a timer deadline belongs to the *start* of its instant), then one
    /// heap event if one is due.
    fn advance_to(&mut self, now: SimTime) {
        debug_assert!(now >= self.now, "event from the past");
        self.now = now;
        if self.wheel.next_expiry() == Some(now) {
            for fire in self.wheel.pop_expired(now) {
                self.events_processed += 1;
                self.filter_flow_timer(fire);
            }
        } else {
            let (at, kind) = self.scheduler.pop().expect("peeked event exists");
            debug_assert!(at == now, "heap event not at the merged instant");
            self.events_processed += 1;
            self.dispatch(kind);
        }
    }

    /// Runs until the event queue is empty or `deadline` is reached.
    /// Returns loop accounting.
    pub fn run_until(&mut self, deadline: SimTime) -> RunSummary {
        // Open-coded merge of `next_event_time` + `advance_to`: the hot
        // loop peeks each queue once per iteration instead of twice. The
        // wheel-before-heap tie rule is the `w <= h` comparison.
        loop {
            let (now, from_wheel) = match (self.scheduler.peek_time(), self.wheel.next_expiry()) {
                (None, None) => break,
                (Some(h), None) => (h, false),
                (None, Some(w)) => (w, true),
                (Some(h), Some(w)) => {
                    if w <= h {
                        (w, true)
                    } else {
                        (h, false)
                    }
                }
            };
            if now > deadline {
                break;
            }
            self.now = now;
            if from_wheel {
                for fire in self.wheel.pop_expired(now) {
                    self.events_processed += 1;
                    self.filter_flow_timer(fire);
                }
            } else {
                let (at, kind) = self.scheduler.pop().expect("peeked event exists");
                debug_assert!(at == now, "heap event not at the merged instant");
                self.events_processed += 1;
                self.dispatch(kind);
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
        RunSummary {
            events_processed: self.events_processed,
            events_scheduled: self.scheduler.scheduled_total() + self.wheel.scheduled_total(),
            ended_at_nanos: self.now.as_nanos(),
        }
    }

    /// Processes the events of the next pending instant (all due wheel
    /// timers, or one heap event). Returns `false` when nothing is
    /// pending.
    pub fn step(&mut self) -> bool {
        match self.next_event_time() {
            Some(next) => {
                self.advance_to(next);
                true
            }
            None => false,
        }
    }

    /// Number of pending events (diagnostics), armed flow timers included.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.scheduler.len() + self.wheel.len()
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::DeliverToNode { node, packet } => {
                self.node_receive(node, packet, None);
            }
            EventKind::LinkDeliver { link } => self.link_deliver(link),
            EventKind::AgentStart { agent } => self.agent_start(agent),
            EventKind::AgentWake { agent, token } => self.agent_wake(agent, token),
            EventKind::FilterTimer {
                node,
                filter_index,
                token,
            } => self.filter_timer(node, filter_index as usize, token),
            EventKind::Control { node, msg } => self.control(node, msg),
        }
    }

    fn node_receive(&mut self, node_id: NodeId, pref: PacketRef, via: Option<LinkId>) {
        let (key, hop_exceeded) = {
            let packet = self.arena.get_mut(pref);
            packet.hops += 1;
            (packet.key, packet.hop_limit_exceeded())
        };
        if hop_exceeded {
            let sid = self.stats_id_of(pref);
            let packet = self.arena.take(pref);
            self.record_drop(&packet, sid, DropReason::HopLimit);
            return;
        }
        self.stats
            .on_node_arrival(self.arena.get(pref), node_id, self.now);
        // Run the filter chain. The flow id is interned exactly once, at
        // the packet's first node arrival, then cached in its arena slot;
        // every filter downstream indexes its tables by the dense id.
        let dst_is_local = self.nodes[node_id.index()].is_local(key.dst);
        let flow = match self.arena.flow_id(pref) {
            Some(flow) => flow,
            None => {
                let flow = self.flows.intern(key);
                self.arena.set_flow_id(pref, flow);
                flow
            }
        };
        let mut verdict = FilterAction::Forward;
        if !self.nodes[node_id.index()].filters.is_empty() {
            let env = PacketEnv {
                via_link: via,
                dst_is_local,
                flow,
            };
            let mut commands = self.take_filter_buf();
            {
                let now = self.now;
                let Simulator {
                    arena,
                    nodes,
                    next_packet_id,
                    ..
                } = self;
                let packet = arena.get(pref);
                let node = &mut nodes[node_id.index()];
                for (index, filter) in node.filters.iter_mut().enumerate() {
                    let mut ctx =
                        FilterCtx::new(now, node_id, index, next_packet_id, &mut commands);
                    match filter.on_packet(packet, &env, &mut ctx) {
                        FilterAction::Forward => {}
                        drop_action @ FilterAction::Drop(_) => {
                            verdict = drop_action;
                            break;
                        }
                    }
                }
            }
            self.run_filter_commands(node_id, &mut commands);
            self.put_filter_buf(commands);
        }
        match verdict {
            FilterAction::Drop(reason) => {
                let sid = self.stats_id_of(pref);
                let packet = self.arena.take(pref);
                self.record_drop(&packet, sid, reason);
            }
            FilterAction::Forward => {
                if dst_is_local {
                    self.deliver_local(node_id, pref, flow);
                } else {
                    self.forward(node_id, pref);
                }
            }
        }
    }

    /// Stats-collector id for the packet in `pref`: the id cached at
    /// allocation, or — for filter-emitted probes, whose key the stats
    /// layer has not seen yet — interned here, at the packet's first
    /// accounting touch (exactly where the key-based path minted it).
    fn stats_id_of(&mut self, pref: PacketRef) -> FlowId {
        match self.arena.stats_id(pref) {
            Some(id) => id,
            None => {
                let key = self.arena.get(pref).key;
                let id = self.stats.flow_id(key);
                self.arena.set_stats_id(pref, id);
                id
            }
        }
    }

    fn record_drop(&mut self, packet: &Packet, sid: FlowId, reason: DropReason) {
        self.stats.on_dropped_id(sid, packet, reason);
        let at = self.now;
        self.trace_record(TraceEvent::Drop {
            at,
            flow: packet.key,
            reason,
        });
    }

    /// Delivers the packet to the agent bound to its destination. `flow`
    /// is the id minted when the packet arrived (or, for loopback sends,
    /// by the caller) — deliveries never re-hash the 4-tuple.
    fn deliver_local(&mut self, node_id: NodeId, pref: PacketRef, flow: FlowId) {
        let dst = self.arena.get(pref).key.dst;
        let sid = self.stats_id_of(pref);
        let Some(agent_id) = self.nodes[node_id.index()].local_agent(dst) else {
            let packet = self.arena.take(pref);
            self.record_drop(&packet, sid, DropReason::NoRoute);
            return;
        };
        // The packet leaves the data path here: out of the arena, by
        // value to the agent.
        let packet = self.arena.take(pref);
        self.stats.on_delivered_id(sid, &packet, node_id, self.now);
        let at = self.now;
        self.trace_record(TraceEvent::Deliver {
            at,
            flow: packet.key,
            node: node_id,
        });
        let mut commands = self.take_agent_buf();
        {
            let mut agent = self.agents[agent_id.index()]
                .take()
                .expect("agent re-entered during its own dispatch");
            let mut ctx = AgentCtx::new(
                self.now,
                agent_id,
                node_id,
                Some(flow),
                &mut self.next_packet_id,
                &mut commands,
            );
            agent.on_packet(packet, &mut ctx);
            self.agents[agent_id.index()] = Some(agent);
        }
        self.run_agent_commands(agent_id, &mut commands);
        self.put_agent_buf(commands);
    }

    fn forward(&mut self, node_id: NodeId, pref: PacketRef) {
        let dst = self.arena.get(pref).key.dst;
        let Some(link_id) = self.nodes[node_id.index()].route_for(dst) else {
            let sid = self.stats_id_of(pref);
            let packet = self.arena.take(pref);
            self.record_drop(&packet, sid, DropReason::NoRoute);
            return;
        };
        self.send_on_link(link_id, pref);
    }

    fn send_on_link(&mut self, link_id: LinkId, pref: PacketRef) {
        if self.link_down[link_id.index()] {
            let sid = self.stats_id_of(pref);
            let packet = self.arena.take(pref);
            self.record_drop(&packet, sid, DropReason::NoRoute);
            return;
        }
        let now = self.now;
        let size = self.arena.get(pref).size_bytes;
        match self.links[link_id.index()].enqueue(pref, size, now) {
            EnqueueOutcome::Accepted(due) => {
                // The whole traversal — serialization slot, queueing
                // delay, propagation — was resolved analytically inside
                // `enqueue`, so the only event a link hop costs is this
                // delivery at the far end.
                self.scheduler
                    .schedule(due, EventKind::LinkDeliver { link: link_id });
            }
            EnqueueOutcome::Dropped(p) => {
                let sid = self.stats_id_of(p);
                let packet = self.arena.take(p);
                self.record_drop(&packet, sid, DropReason::QueueFull);
            }
        }
    }

    /// Drains every delivery due at or before `now` from the link's
    /// FIFO in one pass — the batched arrival path.
    fn link_deliver(&mut self, link_id: LinkId) {
        let now = self.now;
        let to = self.links[link_id.index()].to;
        while let Some(pref) = self.links[link_id.index()].pop_due(now) {
            self.node_receive(to, pref, Some(link_id));
        }
    }

    fn agent_start(&mut self, agent_id: AgentId) {
        let mut commands = self.take_agent_buf();
        {
            let Some(mut agent) = self.agents[agent_id.index()].take() else {
                self.put_agent_buf(commands);
                return;
            };
            let node = self.agent_home[agent_id.index()];
            let mut ctx = AgentCtx::new(
                self.now,
                agent_id,
                node,
                None,
                &mut self.next_packet_id,
                &mut commands,
            );
            agent.on_start(&mut ctx);
            self.agents[agent_id.index()] = Some(agent);
        }
        self.run_agent_commands(agent_id, &mut commands);
        self.put_agent_buf(commands);
    }

    fn agent_wake(&mut self, agent_id: AgentId, token: u64) {
        let mut commands = self.take_agent_buf();
        {
            let Some(mut agent) = self.agents[agent_id.index()].take() else {
                self.put_agent_buf(commands);
                return;
            };
            let node = self.agent_home[agent_id.index()];
            let mut ctx = AgentCtx::new(
                self.now,
                agent_id,
                node,
                None,
                &mut self.next_packet_id,
                &mut commands,
            );
            agent.on_timer(token, &mut ctx);
            self.agents[agent_id.index()] = Some(agent);
        }
        self.run_agent_commands(agent_id, &mut commands);
        self.put_agent_buf(commands);
    }

    fn filter_timer(&mut self, node_id: NodeId, filter_index: usize, token: u64) {
        let mut commands = self.take_filter_buf();
        {
            let now = self.now;
            let node = &mut self.nodes[node_id.index()];
            let Some(filter) = node.filters.get_mut(filter_index) else {
                self.put_filter_buf(commands);
                return;
            };
            let mut ctx = FilterCtx::new(
                now,
                node_id,
                filter_index,
                &mut self.next_packet_id,
                &mut commands,
            );
            filter.on_timer(token, &mut ctx);
        }
        self.run_filter_commands(node_id, &mut commands);
        self.put_filter_buf(commands);
    }

    fn filter_flow_timer(&mut self, fire: FlowTimerFire) {
        let mut commands = self.take_filter_buf();
        {
            let now = self.now;
            let node = &mut self.nodes[fire.node.index()];
            let Some(filter) = node.filters.get_mut(fire.filter_index) else {
                self.put_filter_buf(commands);
                return;
            };
            let mut ctx = FilterCtx::new(
                now,
                fire.node,
                fire.filter_index,
                &mut self.next_packet_id,
                &mut commands,
            );
            filter.on_flow_timer(fire.flow, fire.kind, &mut ctx);
        }
        self.run_filter_commands(fire.node, &mut commands);
        self.put_filter_buf(commands);
    }

    fn control(&mut self, node_id: NodeId, msg: FilterControl) {
        let at = self.now;
        self.trace_record(TraceEvent::Control {
            at,
            node: node_id,
            summary: format!("{msg:?}"),
        });
        let mut commands = self.take_filter_buf();
        {
            let now = self.now;
            let node = &mut self.nodes[node_id.index()];
            for (index, filter) in node.filters.iter_mut().enumerate() {
                let mut ctx =
                    FilterCtx::new(now, node_id, index, &mut self.next_packet_id, &mut commands);
                filter.on_control(&msg, &mut ctx);
            }
        }
        self.run_filter_commands(node_id, &mut commands);
        self.put_filter_buf(commands);
    }

    fn run_filter_commands(&mut self, node_id: NodeId, commands: &mut Vec<FilterCommand>) {
        for cmd in commands.drain(..) {
            match cmd {
                FilterCommand::EmitPacket(packet) => {
                    // Probes are routed from this node without re-filtering,
                    // mirroring a router-originated control packet. Their
                    // stats id stays unresolved until the first accounting
                    // touch so the collector's mint order is unchanged.
                    let pref = self.arena.alloc(packet, None);
                    self.forward(node_id, pref);
                }
                FilterCommand::ScheduleTimer {
                    filter_index,
                    delay,
                    token,
                } => {
                    self.scheduler.schedule(
                        self.now + delay,
                        EventKind::FilterTimer {
                            node: node_id,
                            filter_index: filter_index as u32,
                            token,
                        },
                    );
                }
                FilterCommand::ScheduleFlowTimer {
                    filter_index,
                    delay,
                    flow,
                    kind,
                } => {
                    self.wheel.insert(
                        self.now + delay,
                        FlowTimerFire {
                            node: node_id,
                            filter_index,
                            flow,
                            kind,
                        },
                    );
                }
                FilterCommand::Note { note, flow } => self.apply_note(note, flow),
            }
        }
    }

    fn apply_note(&mut self, note: crate::filter::StatNote, flow: Option<crate::packet::FlowKey>) {
        use crate::filter::StatNote;
        match (note, flow) {
            (StatNote::AtrSeen, Some(key)) => self.stats.on_atr_seen(key),
            (StatNote::ProbeSent, Some(key)) => self.stats.on_probe_sent(key),
            (StatNote::FlowDeclaredNice, Some(key)) => self.stats.on_flow_declared(key, true),
            (StatNote::FlowDeclaredMalicious, Some(key)) => {
                self.stats.on_flow_declared(key, false);
            }
            _ => {}
        }
    }

    fn run_agent_commands(&mut self, agent_id: AgentId, commands: &mut Vec<AgentCommand>) {
        let node = self.agent_home[agent_id.index()];
        for cmd in commands.drain(..) {
            match cmd {
                AgentCommand::SendPacket(packet) => {
                    let sid = match self.agent_send_memo[agent_id.index()] {
                        Some((key, id)) if key == packet.key => id,
                        _ => {
                            let id = self.stats.flow_id(packet.key);
                            self.agent_send_memo[agent_id.index()] = Some((packet.key, id));
                            id
                        }
                    };
                    self.stats.on_sent_id(sid, &packet);
                    let key = packet.key;
                    let pref = self.arena.alloc(packet, Some(sid));
                    // Host stacks inject directly onto the forwarding path;
                    // if the destination is another local agent, deliver
                    // directly (loopback).
                    if self.nodes[node.index()].is_local(key.dst) {
                        let flow = self.flows.intern(key);
                        self.deliver_local(node, pref, flow);
                    } else {
                        self.forward(node, pref);
                    }
                }
                AgentCommand::ScheduleTimer { delay, token } => {
                    self.scheduler.schedule(
                        self.now + delay,
                        EventKind::AgentWake {
                            agent: agent_id,
                            token,
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::CountingSink;
    use crate::event::FilterControl;
    use crate::packet::{FlowKey, PacketKind};
    use crate::time::SimDuration;

    fn two_node_sim() -> (Simulator, NodeId, NodeId, AgentId, Addr) {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let (ab, _) = sim.add_duplex_link(a, b, LinkSpec::default());
        let dst = Addr::from_octets(10, 0, 0, 2);
        sim.add_route(a, dst, ab);
        let sink = sim.add_agent(b, Box::new(CountingSink::new()), SimTime::ZERO);
        sim.bind_local_addr(b, dst, sink);
        (sim, a, b, sink, dst)
    }

    #[test]
    fn packet_crosses_one_link() {
        let (mut sim, a, _b, sink, dst) = two_node_sim();
        let key = FlowKey::new(Addr::from_octets(10, 0, 0, 1), dst, 1, 80);
        sim.inject_packet(a, key, PacketKind::Udp, 1000, false, SimTime::ZERO);
        let summary = sim.run_until(SimTime::from_secs_f64(1.0));
        assert!(summary.events_processed >= 3, "{summary:?}");
        assert_eq!(sim.agent::<CountingSink>(sink).unwrap().delivered(), 1);
        // Delivery time = tx (1000B at 10Mb/s = 0.8ms) + prop (10ms).
        let rec = sim.stats().flow(&key).unwrap();
        assert_eq!(rec.delivered, 1);
        assert_eq!(rec.sent, 1);
    }

    #[test]
    fn no_route_drops_are_accounted() {
        let (mut sim, a, _b, _sink, _dst) = two_node_sim();
        let stray = FlowKey::new(Addr::new(1), Addr::new(99), 1, 2);
        sim.inject_packet(a, stray, PacketKind::Udp, 100, false, SimTime::ZERO);
        sim.run_until(SimTime::from_secs_f64(0.1));
        let rec = sim.stats().flow(&stray).unwrap();
        assert_eq!(rec.dropped_other, 1);
        assert_eq!(rec.delivered, 0);
    }

    #[test]
    fn queue_overflow_drops() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        // Slow link (1 Mbit/s), 2-packet queue.
        let spec = LinkSpec::new(1e6, SimDuration::from_millis(1), 2);
        let (ab, _) = sim.add_duplex_link(a, b, spec);
        let dst = Addr::from_octets(10, 0, 0, 2);
        sim.add_route(a, dst, ab);
        let sink = sim.add_agent(b, Box::new(CountingSink::new()), SimTime::ZERO);
        sim.bind_local_addr(b, dst, sink);
        let key = FlowKey::new(Addr::from_octets(10, 0, 0, 1), dst, 1, 80);
        // Ten simultaneous packets: 1 on wire + 2 queued + 7 dropped.
        for _ in 0..10 {
            sim.inject_packet(a, key, PacketKind::Udp, 1000, false, SimTime::ZERO);
        }
        sim.run_until(SimTime::from_secs_f64(1.0));
        let rec = sim.stats().flow(&key).unwrap();
        assert_eq!(rec.delivered, 3);
        assert_eq!(rec.dropped_queue, 7);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let (mut sim, a, _b, _sink, dst) = two_node_sim();
            let key = FlowKey::new(Addr::from_octets(10, 0, 0, 1), dst, 1, 80);
            for i in 0..50 {
                sim.inject_packet(
                    a,
                    key,
                    PacketKind::Udp,
                    500 + i,
                    false,
                    SimTime::from_nanos(u64::from(i) * 1000),
                );
            }
            let summary = sim.run_until(SimTime::from_secs_f64(2.0));
            (summary, sim.stats().flow(&key).unwrap().clone())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn filters_can_drop() {
        use crate::filter::{FilterAction, FilterCtx, PacketEnv, PacketFilter};
        use std::any::Any;

        struct DropAll;
        impl PacketFilter for DropAll {
            fn on_packet(
                &mut self,
                _p: &Packet,
                _e: &PacketEnv,
                _c: &mut FilterCtx<'_>,
            ) -> FilterAction {
                FilterAction::Drop(DropReason::FilterOther)
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let (mut sim, a, b, sink, dst) = two_node_sim();
        sim.add_filter(b, Box::new(DropAll));
        let key = FlowKey::new(Addr::from_octets(10, 0, 0, 1), dst, 1, 80);
        sim.inject_packet(a, key, PacketKind::Udp, 100, false, SimTime::ZERO);
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(sim.agent::<CountingSink>(sink).unwrap().delivered(), 0);
        assert_eq!(sim.stats().flow(&key).unwrap().dropped_other, 1);
        let _ = a;
    }

    #[test]
    fn hop_limit_guards_routing_loops() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        let (ab, ba) = sim.add_duplex_link(a, b, LinkSpec::default());
        let dst = Addr::new(77);
        // Deliberate loop: a routes to b, b routes back to a.
        sim.add_route(a, dst, ab);
        sim.add_route(b, dst, ba);
        let key = FlowKey::new(Addr::new(1), dst, 1, 2);
        sim.inject_packet(a, key, PacketKind::Udp, 100, false, SimTime::ZERO);
        sim.run_until(SimTime::from_secs_f64(60.0));
        let rec = sim.stats().flow(&key).unwrap();
        assert_eq!(rec.dropped_other, 1, "loop must terminate via hop limit");
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim = Simulator::new(1);
        let deadline = SimTime::from_secs_f64(3.0);
        sim.run_until(deadline);
        assert_eq!(sim.now(), deadline);
    }

    #[test]
    fn downed_link_blackholes_until_restored() {
        let (mut sim, a, _b, sink, dst) = two_node_sim();
        let key = FlowKey::new(Addr::from_octets(10, 0, 0, 1), dst, 1, 80);
        let link = sim.nodes[a.index()].route_for(dst).unwrap();
        sim.set_link_down(link);
        assert!(sim.link_is_down(link));
        sim.inject_packet(a, key, PacketKind::Udp, 100, false, SimTime::ZERO);
        sim.run_until(SimTime::from_secs_f64(0.5));
        assert_eq!(sim.agent::<CountingSink>(sink).unwrap().delivered(), 0);
        assert_eq!(sim.stats().flow(&key).unwrap().dropped_other, 1);
        // Restore and retry.
        sim.set_link_up(link);
        sim.inject_packet(a, key, PacketKind::Udp, 100, false, sim.now());
        sim.run_until(SimTime::from_secs_f64(1.0));
        assert_eq!(sim.agent::<CountingSink>(sink).unwrap().delivered(), 1);
    }

    #[test]
    fn trace_records_drops_and_deliveries() {
        let (mut sim, a, _b, _sink, dst) = two_node_sim();
        sim.enable_trace(16);
        let key = FlowKey::new(Addr::from_octets(10, 0, 0, 1), dst, 1, 80);
        sim.inject_packet(a, key, PacketKind::Udp, 100, false, SimTime::ZERO);
        let stray = FlowKey::new(Addr::new(1), Addr::new(99), 1, 2);
        sim.inject_packet(a, stray, PacketKind::Udp, 100, false, SimTime::ZERO);
        sim.run_until(SimTime::from_secs_f64(0.5));
        let trace = sim.trace().unwrap();
        assert!(trace
            .iter()
            .any(|e| matches!(e, crate::trace::TraceEvent::Deliver { .. })));
        assert!(trace
            .iter()
            .any(|e| matches!(e, crate::trace::TraceEvent::Drop { .. })));
    }

    /// Builds a fresh two-node sim, loads it with mid-flight traffic up
    /// to `pause`, and returns it — the donor for snapshot round-trips.
    fn loaded_sim(pause: SimTime) -> Simulator {
        let (mut sim, a, _b, _sink, dst) = two_node_sim();
        sim.enable_trace(8);
        let key = FlowKey::new(Addr::from_octets(10, 0, 0, 1), dst, 1, 80);
        for i in 0..40u64 {
            sim.inject_packet(
                a,
                key,
                PacketKind::Udp,
                600,
                false,
                SimTime::from_nanos(i * 500_000),
            );
        }
        sim.run_until(pause);
        sim
    }

    fn probe_hash(sim: &Simulator) -> Vec<(String, u64)> {
        let mut probe = mafic_obs::IntervalProbe::new();
        sim.hash_components(&mut probe);
        probe
            .components()
            .iter()
            .map(|(label, hash)| (label.clone(), *hash))
            .collect()
    }

    #[test]
    fn snapshot_round_trips_mid_run_state() {
        let pause = SimTime::from_secs_f64(0.01);
        let donor = loaded_sim(pause);
        assert!(donor.pending_events() > 0, "pause must land mid-flight");
        let mut snapshot = mafic_obs::Snapshot::new(mafic_obs::SnapshotHeader {
            snap_version: mafic_obs::SNAP_VERSION,
            crate_version: "test".into(),
            seed: donor.seed(),
            spec_fingerprint: 0,
            at_nanos: pause.as_nanos(),
            interval_index: 0,
        });
        donor.snap_save_into(&mut snapshot);
        let bytes = snapshot.encode();

        let mut restored = loaded_sim(SimTime::ZERO);
        let decoded = mafic_obs::Snapshot::decode(&bytes).unwrap();
        restored.snap_restore_from(&decoded).unwrap();
        assert_eq!(probe_hash(&donor), probe_hash(&restored));
        assert_eq!(restored.now(), pause);

        // Both copies must continue to identical ends.
        let mut donor = donor;
        let end = SimTime::from_secs_f64(1.0);
        assert_eq!(donor.run_until(end), restored.run_until(end));
        assert_eq!(probe_hash(&donor), probe_hash(&restored));
        let tail_a = donor.trace_tail(8);
        let tail_b = restored.trace_tail(8);
        assert_eq!(tail_a, tail_b);
        assert!(!tail_a.is_empty());
    }

    #[test]
    fn restore_rejects_mismatched_topology() {
        let donor = loaded_sim(SimTime::from_secs_f64(0.01));
        let mut snapshot = mafic_obs::Snapshot::new(mafic_obs::SnapshotHeader {
            snap_version: mafic_obs::SNAP_VERSION,
            crate_version: "test".into(),
            seed: donor.seed(),
            spec_fingerprint: 0,
            at_nanos: 0,
            interval_index: 0,
        });
        donor.snap_save_into(&mut snapshot);
        let bytes = snapshot.encode();
        let decoded = mafic_obs::Snapshot::decode(&bytes).unwrap();

        // A sim with an extra link cannot accept the snapshot.
        let (mut other, a, b, _sink, _dst) = two_node_sim();
        other.enable_trace(8);
        other.add_link(a, b, LinkSpec::default());
        let err = other.snap_restore_from(&decoded).unwrap_err();
        assert!(matches!(err, SnapError::Malformed(_)), "{err}");

        // A sim missing the trace buffer cannot either.
        let (mut untraced, _a, _b, _sink, _dst) = two_node_sim();
        let err = untraced.snap_restore_from(&decoded).unwrap_err();
        assert!(matches!(err, SnapError::Malformed(_)), "{err}");
    }

    #[test]
    fn trace_records_control_messages() {
        let (mut sim, a, _b, _sink, _dst) = two_node_sim();
        sim.enable_trace(4);
        sim.send_control(a, FilterControl::PushbackStop, SimTime::ZERO);
        sim.run_until(SimTime::from_secs_f64(0.1));
        let trace = sim.trace().unwrap();
        assert!(trace
            .iter()
            .any(|e| matches!(e, crate::trace::TraceEvent::Control { .. })));
    }
}
