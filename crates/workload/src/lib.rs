//! # mafic-workload
//!
//! Scenario generation and execution for the MAFIC reproduction: builds
//! the protected domain, provisions legitimate TCP flows and spoofing
//! attack zombies per the paper's parameter surface (`Vt`, `Γ`, `R`,
//! `Pd`, `N`), installs the LogLog taps and the defense filters, and
//! runs the periodic pushback monitor that turns sketch epochs into
//! `PushbackStart` control messages.
//!
//! With `domains >= 2` the spec builds a multi-domain internet instead:
//! remote stubs flood the victim across a transit tier, and the
//! inter-domain cascaded pushback (`mafic-pushback`) escalates the
//! defense up to `pushback_depth` hops toward the zombies. Each domain
//! runs the [`mafic::DefensePolicy`] the spec resolves for it —
//! explicit overrides, a transit-tier default, and a seeded
//! `participation_fraction` placement — so heterogeneous and partially
//! deployed federations are first-class scenarios: non-participating
//! domains deploy nothing and escalation requests route *through* them
//! to the nearest cooperating domain.
//!
//! # Example
//!
//! ```no_run
//! use mafic_workload::{run_spec, ScenarioSpec};
//!
//! let outcome = run_spec(ScenarioSpec::default()).unwrap();
//! println!("{}", outcome.report);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_docs)]

pub mod error;
pub mod runner;
pub mod scenario;
pub mod spec;

pub use error::WorkloadError;
pub use mafic_adversary::{AdversarySpec, StrategyKind};
pub use runner::{
    encode_checkpoint, restore_branch, restore_run, resume_scenario, run_scenario, run_spec,
    RunOutcome, RunState,
};
pub use scenario::{
    FlowInfo, PushbackDomainControl, PushbackPlan, PushbackUpstream, Scenario, SpoofMode,
};
pub use spec::{DetectionMode, NominalRate, ScenarioSpec};
