//! The LogLog traffic tap — the `LogLogCounter` connector of the paper's
//! NS-2 implementation.
//!
//! One tap per router. It never drops anything; it records, per epoch,
//! the distinct packet ids that *entered the domain* at this router
//! (arrivals on configured ingress links → `S_i`) and the distinct
//! packets that *leave the domain* here (arrivals destined to one of the
//! router's egress addresses → `D_i`). The pushback monitor snapshots
//! these sketches periodically to build the traffic matrix.

use mafic_loglog::{LogLog, Precision, RouterSketch};
use mafic_netsim::{Addr, FilterAction, FilterCtx, LinkId, Packet, PacketEnv, PacketFilter};
use std::any::Any;
use std::collections::BTreeSet;

/// A non-dropping sketch tap installed on a router.
///
/// Membership sets are `BTreeSet`s: tiny (a handful of access links per
/// router), branch-predictable, and deterministic to iterate — the
/// simulation crates ban `std::collections::HashSet` outright (see
/// `clippy.toml`).
#[derive(Debug)]
pub struct LogLogTap {
    sketch: RouterSketch,
    /// Distinct *source addresses* seen on ingress this epoch — the
    /// subsidence guard's secondary evidence. The packet-id sketches
    /// above estimate traffic volume set-unions; this one estimates how
    /// many senders produced it, so a single link-saturating legit
    /// source reads as cardinality ≈ 1 rather than a flood.
    addr_sketch: LogLog,
    precision: Precision,
    ingress_links: BTreeSet<LinkId>,
    egress_addrs: BTreeSet<Addr>,
    packets_seen: u64,
}

impl LogLogTap {
    /// Creates a tap.
    ///
    /// * `ingress_links` — links whose arrivals count as domain entries
    ///   (the access links from directly attached hosts).
    /// * `egress_addrs` — destination addresses for which this router is
    ///   the last hop (its attached hosts / the victim).
    #[must_use]
    pub fn new(
        precision: Precision,
        ingress_links: impl IntoIterator<Item = LinkId>,
        egress_addrs: impl IntoIterator<Item = Addr>,
    ) -> Self {
        LogLogTap {
            sketch: RouterSketch::new(precision),
            addr_sketch: LogLog::new(precision),
            precision,
            ingress_links: ingress_links.into_iter().collect(),
            egress_addrs: egress_addrs.into_iter().collect(),
            packets_seen: 0,
        }
    }

    /// The current epoch's sketch pair.
    #[must_use]
    pub fn sketch(&self) -> &RouterSketch {
        &self.sketch
    }

    /// Clones the sketch and resets it for the next epoch. The monitor
    /// calls this once per observation interval.
    pub fn take_epoch(&mut self) -> RouterSketch {
        let snapshot = self.sketch.clone();
        self.sketch = RouterSketch::new(self.precision);
        self.addr_sketch.clear();
        snapshot
    }

    /// Moves the current epoch's sketch pair into `out` and rolls the
    /// tap over in place — the allocation-free variant of
    /// [`take_epoch`](LogLogTap::take_epoch) for a caller that harvests
    /// every interval: `out`'s register buffers are cleared and recycled
    /// as the tap's next-epoch storage, so steady-state harvesting
    /// allocates nothing (buffers are rebuilt only if `out` arrives at
    /// the wrong precision).
    pub fn take_epoch_into(&mut self, out: &mut RouterSketch) {
        if out.source_sketch().precision() != self.precision {
            *out = RouterSketch::new(self.precision);
        }
        out.clear();
        std::mem::swap(&mut self.sketch, out);
        self.addr_sketch.clear();
    }

    /// Estimated distinct source addresses seen on ingress links this
    /// epoch. Read it *before* harvesting — both
    /// [`take_epoch`](LogLogTap::take_epoch) and
    /// [`take_epoch_into`](LogLogTap::take_epoch_into) reset it.
    #[must_use]
    pub fn source_address_cardinality(&self) -> f64 {
        self.addr_sketch.estimate()
    }

    /// Packets observed over the tap's lifetime.
    #[must_use]
    pub fn packets_seen(&self) -> u64 {
        self.packets_seen
    }
}

impl PacketFilter for LogLogTap {
    fn on_packet(
        &mut self,
        packet: &Packet,
        env: &PacketEnv,
        _ctx: &mut FilterCtx<'_>,
    ) -> FilterAction {
        self.packets_seen += 1;
        if let Some(via) = env.via_link {
            if self.ingress_links.contains(&via) {
                self.sketch.record_source(packet.id);
                self.addr_sketch
                    .insert_u64(u64::from(packet.key.src.as_u32()));
            }
        }
        if self.egress_addrs.contains(&packet.key.dst) {
            self.sketch.record_destination(packet.id);
            // The victim router's tap watches only egress addresses
            // (no ingress links), so the distinct-sender evidence must
            // come from the victim-bound arrivals themselves.
            self.addr_sketch
                .insert_u64(u64::from(packet.key.src.as_u32()));
        }
        FilterAction::Forward
    }

    fn snap_save(&self, w: &mut mafic_obs::SnapWriter) {
        // Ingress/egress membership and precision are build-time; only
        // the epoch sketch registers and the lifetime counter are state.
        for sketch in [
            self.sketch.source_sketch(),
            self.sketch.destination_sketch(),
        ] {
            w.write_bytes(sketch.registers());
            w.write_u64(sketch.inserts());
        }
        w.write_bytes(self.addr_sketch.registers());
        w.write_u64(self.addr_sketch.inserts());
        w.write_u64(self.packets_seen);
    }

    fn snap_restore(
        &mut self,
        r: &mut mafic_obs::SnapReader<'_>,
    ) -> Result<(), mafic_obs::SnapError> {
        let src_regs = r.read_bytes()?.to_vec();
        let src_inserts = r.read_u64()?;
        let dst_regs = r.read_bytes()?.to_vec();
        let dst_inserts = r.read_u64()?;
        self.sketch
            .source_sketch_mut()
            .restore_parts(&src_regs, src_inserts)
            .map_err(mafic_obs::SnapError::Malformed)?;
        self.sketch
            .destination_sketch_mut()
            .restore_parts(&dst_regs, dst_inserts)
            .map_err(mafic_obs::SnapError::Malformed)?;
        let addr_regs = r.read_bytes()?.to_vec();
        let addr_inserts = r.read_u64()?;
        self.addr_sketch
            .restore_parts(&addr_regs, addr_inserts)
            .map_err(mafic_obs::SnapError::Malformed)?;
        self.packets_seen = r.read_u64()?;
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mafic_netsim::testkit::FilterHarness;
    use mafic_netsim::{FlowKey, PacketKind, Provenance, SimTime};

    fn pkt(id: u64, dst: Addr) -> Packet {
        Packet {
            id,
            key: FlowKey::new(Addr::from_octets(10, 1, 0, 1), dst, 5, 80),
            kind: PacketKind::Udp,
            size_bytes: 500,
            created_at: SimTime::ZERO,
            provenance: Provenance::infrastructure(),
            hops: 0,
        }
    }

    #[test]
    fn records_sources_only_on_ingress_links() {
        let mut h = FilterHarness::new();
        let ingress = LinkId::from_index(3);
        let other = LinkId::from_index(4);
        let mut tap = LogLogTap::new(Precision::P10, [ingress], []);
        for id in 0..1000 {
            let _ = h.offer(&mut tap, &pkt(id, Addr::new(9)), Some(ingress), false);
        }
        for id in 1000..2000 {
            let _ = h.offer(&mut tap, &pkt(id, Addr::new(9)), Some(other), false);
        }
        let s = tap.sketch().source_cardinality();
        assert!((s - 1000.0).abs() / 1000.0 < 0.2, "S_i estimate {s}");
        assert_eq!(tap.sketch().destination_cardinality(), 0.0);
        assert_eq!(tap.packets_seen(), 2000);
    }

    #[test]
    fn records_destinations_for_egress_addrs() {
        let mut h = FilterHarness::new();
        let victim = Addr::from_octets(10, 200, 0, 1);
        let mut tap = LogLogTap::new(Precision::P10, [], [victim]);
        for id in 0..800 {
            let _ = h.offer(&mut tap, &pkt(id, victim), None, false);
        }
        for id in 800..900 {
            let _ = h.offer(&mut tap, &pkt(id, Addr::new(5)), None, false);
        }
        let d = tap.sketch().destination_cardinality();
        assert!((d - 800.0).abs() / 800.0 < 0.2, "D_i estimate {d}");
    }

    #[test]
    fn epoch_rollover_resets_the_sketch() {
        let mut h = FilterHarness::new();
        let victim = Addr::from_octets(10, 200, 0, 1);
        let mut tap = LogLogTap::new(Precision::P10, [], [victim]);
        for id in 0..500 {
            let _ = h.offer(&mut tap, &pkt(id, victim), None, false);
        }
        let epoch = tap.take_epoch();
        assert!(epoch.destination_cardinality() > 300.0);
        assert_eq!(tap.sketch().destination_cardinality(), 0.0);
    }

    #[test]
    fn take_epoch_into_swaps_and_rolls_over() {
        let mut h = FilterHarness::new();
        let victim = Addr::from_octets(10, 200, 0, 1);
        let mut tap = LogLogTap::new(Precision::P10, [], [victim]);
        for id in 0..500 {
            let _ = h.offer(&mut tap, &pkt(id, victim), None, false);
        }
        // First harvest: the epoch moves into the slot.
        let mut slot = RouterSketch::new(Precision::P10);
        tap.take_epoch_into(&mut slot);
        assert!(slot.destination_cardinality() > 300.0);
        assert_eq!(tap.sketch().destination_cardinality(), 0.0);
        // Second harvest recycles the slot's buffers: the stale epoch
        // is cleared, the new one lands.
        for id in 500..520 {
            let _ = h.offer(&mut tap, &pkt(id, victim), None, false);
        }
        tap.take_epoch_into(&mut slot);
        let d = slot.destination_cardinality();
        assert!(d > 0.0 && d < 100.0, "slot holds only the new epoch: {d}");
        // A wrong-precision slot is rebuilt rather than corrupting the
        // rollover.
        let mut wrong = RouterSketch::new(Precision::P4);
        tap.take_epoch_into(&mut wrong);
        assert_eq!(wrong.source_sketch().precision(), Precision::P10);
    }

    #[test]
    fn address_cardinality_counts_senders_not_packets() {
        let mut h = FilterHarness::new();
        let ingress = LinkId::from_index(3);
        let mut tap = LogLogTap::new(Precision::P10, [ingress], []);
        // One chatty source sending 1000 packets: the packet-id sketch
        // reads ~1000 but the address sketch reads ~1.
        for id in 0..1000 {
            let _ = h.offer(&mut tap, &pkt(id, Addr::new(9)), Some(ingress), false);
        }
        let one = tap.source_address_cardinality();
        assert!(one < 5.0, "single sender must read small, got {one}");
        // Harvest resets the epoch's address sketch too.
        let _ = tap.take_epoch();
        assert_eq!(tap.source_address_cardinality(), 0.0);
        // 500 distinct senders read as hundreds.
        for id in 0..500 {
            let mut p = pkt(5000 + id, Addr::new(9));
            p.key = FlowKey::new(Addr::new(100 + id as u32), p.key.dst, 5, 80);
            let _ = h.offer(&mut tap, &p, Some(ingress), false);
        }
        let many = tap.source_address_cardinality();
        assert!(
            (many - 500.0).abs() / 500.0 < 0.2,
            "distinct senders estimate {many}"
        );
    }

    #[test]
    fn tap_always_forwards() {
        let mut h = FilterHarness::new();
        let mut tap = LogLogTap::new(Precision::P8, [], []);
        let fx = h.offer_transit(&mut tap, &pkt(1, Addr::new(2)));
        assert_eq!(fx.action, Some(FilterAction::Forward));
        assert!(fx.emitted.is_empty());
        assert!(fx.timers.is_empty());
    }

    #[test]
    fn snapshot_round_trips_sketch_registers() {
        let mut h = FilterHarness::new();
        let victim = Addr::from_octets(10, 200, 0, 1);
        let ingress = LinkId::from_index(3);
        let mut tap = LogLogTap::new(Precision::P10, [ingress], [victim]);
        for id in 0..600 {
            let _ = h.offer(&mut tap, &pkt(id, victim), Some(ingress), false);
        }
        let mut w = mafic_obs::SnapWriter::new();
        tap.snap_save(&mut w);
        let bytes = w.into_bytes();

        let mut back = LogLogTap::new(Precision::P10, [ingress], [victim]);
        let mut r = mafic_obs::SnapReader::new(&bytes);
        back.snap_restore(&mut r).expect("restore");
        assert!(r.is_empty());
        assert_eq!(back.packets_seen(), 600);
        assert_eq!(
            back.sketch().source_cardinality(),
            tap.sketch().source_cardinality()
        );
        assert_eq!(
            back.sketch().destination_cardinality(),
            tap.sketch().destination_cardinality()
        );

        // A wrong-precision tap rejects the register block by length.
        let mut wrong = LogLogTap::new(Precision::P4, [ingress], [victim]);
        let mut r = mafic_obs::SnapReader::new(&bytes);
        let err = wrong.snap_restore(&mut r).unwrap_err();
        assert!(matches!(err, mafic_obs::SnapError::Malformed(_)));
    }
}
