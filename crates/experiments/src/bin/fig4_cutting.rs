//! Regenerates Fig. 4(a) (traffic reduction) and Fig. 4(b) (bandwidth
//! over time).

use mafic_experiments::{figures, trial_count};

fn main() {
    let trials = trial_count();
    for result in [figures::fig4a(trials), figures::fig4b()] {
        match result {
            Ok(fig) => println!("{fig}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}
