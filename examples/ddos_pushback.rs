//! End-to-end DDoS pushback walkthrough.
//!
//! Builds the paper's Figure 1 scenario — a victim behind a last-hop
//! router, zombies with spoofed sources spread over the ingress routers
//! — and narrates the whole timeline: attack onset, sketch-based victim
//! detection, ATR identification, MAFIC probing, and the cut, with a
//! before/after bandwidth table at the victim.
//!
//! ```text
//! cargo run --release --example ddos_pushback
//! ```

use mafic_suite::metrics::downsample;
use mafic_suite::workload::{run_scenario, Scenario, ScenarioSpec, SpoofMode};

fn main() -> Result<(), mafic_suite::workload::WorkloadError> {
    let spec = ScenarioSpec {
        total_flows: 60,
        tcp_share: 0.9, // 6 zombies among 60 flows
        seed: 42,
        ..ScenarioSpec::default()
    };
    let mut scenario = Scenario::build(spec)?;

    println!("== domain ==");
    println!(
        "routers: 1 last-hop + {} core + {} ingress; hosts: {}",
        scenario.domain.core_routers.len(),
        scenario.domain.ingress_routers.len(),
        scenario.domain.hosts.len()
    );
    println!("victim address: {}", scenario.domain.victim_addr);

    println!();
    println!("== attack flows (ground truth) ==");
    for flow in scenario.flows.iter().filter(|f| f.is_attack) {
        let spoof = match flow.spoof {
            SpoofMode::None => "own address",
            SpoofMode::Illegal => "ILLEGAL spoofed source",
            SpoofMode::LegalOtherSubnet => "legally spoofed source (other subnet)",
        };
        println!(
            "  zombie via ingress#{:<2} claims {:<18} [{}]",
            flow.ingress_index,
            flow.key.src.to_string(),
            spoof
        );
    }

    let outcome = run_scenario(&mut scenario)?;

    println!();
    println!("== timeline ==");
    println!("t=1.000s  attack begins");
    match outcome.triggered_at {
        Some(t) => println!(
            "t={:.3}s  set-union counting monitor raises the alarm; {} ATRs instructed",
            t.as_secs_f64(),
            outcome.atr_nodes.len()
        ),
        None => println!("          (defense never triggered)"),
    }

    println!();
    println!("== victim offered load (100 ms buckets around the attack) ==");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "t (s)", "legit B/s", "attack B/s", "total B/s"
    );
    for p in downsample(&outcome.series, 2) {
        if (0.8..=3.0).contains(&p.time_s) {
            println!(
                "{:>8.2} {:>14.0} {:>14.0} {:>14.0}",
                p.time_s,
                p.legit_bps,
                p.attack_bps,
                p.total_bps()
            );
        }
    }

    println!();
    println!("== verdict ==");
    println!("{}", outcome.report);
    Ok(())
}
