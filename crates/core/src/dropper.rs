//! The MAFIC adaptive dropper — the control flow of the paper's Figure 2.
//!
//! Installed as a [`PacketFilter`] on each Attack Transit Router, idle
//! until a `PushbackStart` control message arrives. While active, for
//! every packet destined to the victim:
//!
//! 1. **PDT match** → drop (permanent).
//! 2. **NFT match** → forward (flow already passed the probe test).
//! 3. **SFT match** → update the arrival count; if the 2×RTT timer has
//!    expired, classify (rate decreased → NFT, else → PDT); otherwise
//!    keep dropping with probability `Pd`.
//! 4. **New flow** → illegal source goes straight to the PDT; otherwise
//!    the packet is dropped with probability `Pd`, and on the first such
//!    drop the flow enters the SFT: the router records the pre-drop
//!    baseline rate, issues a duplicate-ACK probe burst toward its
//!    claimed source, and starts a timer of `timer_rtt_multiplier × RTT`
//!    (RTT read from the packet's timestamp option, clamped).
//!
//! The hot path is index-based end to end: the packet's interned
//! [`FlowId`] (minted once by the simulator, delivered in [`PacketEnv`])
//! keys a single-slab [`FlowTables`] probe and a dense
//! [`ArrivalTracker`], and timers ride the netsim timer wheel carrying
//! the id directly — no flow hashing and no token maps anywhere in the
//! filter.
//!
//! On `PushbackStop` all tables are flushed. Flow ids survive the flush
//! (the interner outlives any activation); wheel timers armed before the
//! flush may still fire and are ignored as stale.

use crate::config::{AddressValidator, MaficConfig};
use crate::rate::ArrivalTracker;
use crate::tables::{FlowState, FlowTables, PdtReason, SftEntry};
use mafic_netsim::{
    Addr, DropReason, FilterAction, FilterControl, FilterCtx, FlowId, FlowKey, Packet, PacketEnv,
    PacketFilter, PacketKind, Provenance, SimDuration, SimTime, StatNote,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::any::Any;

/// Wheel-timer kind: the 2×RTT probation deadline of an SFT flow.
pub const TIMER_PROBATION: u16 = 0;
/// Wheel-timer kind: NFT re-validation (anti-pulsing extension).
pub const TIMER_REVALIDATE: u16 = 1;

/// Aggregate counters exposed for diagnostics and the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaficCounters {
    /// Packets examined while the defense was active.
    pub examined: u64,
    /// Packets dropped during probing (SFT phase and first-touch drops).
    pub dropped_probing: u64,
    /// Packets dropped by PDT membership.
    pub dropped_permanent: u64,
    /// Packets dropped for illegal source addresses.
    pub dropped_illegal: u64,
    /// Probe bursts emitted.
    pub probes_sent: u64,
    /// Wheel timers armed (probation deadlines + NFT re-validations) —
    /// the filter's per-flow timer cost, reported as a deployment cost
    /// proxy alongside table memory.
    pub timers_armed: u64,
    /// Flows declared nice.
    pub flows_nice: u64,
    /// Flows declared malicious (including illegal-source flows).
    pub flows_malicious: u64,
}

/// The flow's standing at packet time, extracted from the single slab
/// probe so the borrow ends before any mutation.
enum Standing {
    Condemned,
    Nice,
    Suspicious { deadline: SimTime },
    New,
}

/// The MAFIC adaptive dropping filter.
pub struct MaficFilter {
    config: MaficConfig,
    validator: AddressValidator,
    tables: FlowTables,
    tracker: ArrivalTracker,
    rng: SmallRng,
    /// `Some(victim)` while the defense is active.
    active: Option<Addr>,
    counters: MaficCounters,
}

impl std::fmt::Debug for MaficFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaficFilter")
            .field("active", &self.active)
            .field("sft", &self.tables.sft_len())
            .field("nft", &self.tables.nft_len())
            .field("pdt", &self.tables.pdt_len())
            .field("counters", &self.counters)
            .finish()
    }
}

impl MaficFilter {
    /// Creates an (inactive) MAFIC filter.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation — a configuration bug.
    #[must_use]
    pub fn new(config: MaficConfig, validator: AddressValidator) -> Self {
        config.validate().expect("invalid MaficConfig");
        let tables = FlowTables::new(
            config.sft_capacity,
            config.nft_capacity,
            config.pdt_capacity,
        );
        let tracker = ArrivalTracker::new(config.rate_horizon, config.rate_max_flows);
        let rng = SmallRng::seed_from_u64(config.seed);
        MaficFilter {
            config,
            validator,
            tables,
            tracker,
            rng,
            active: None,
            counters: MaficCounters::default(),
        }
    }

    /// True while a pushback request is in force.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }

    /// The victim address being defended, if active.
    #[must_use]
    pub fn victim(&self) -> Option<Addr> {
        self.active
    }

    /// Aggregate counters.
    #[must_use]
    pub fn counters(&self) -> MaficCounters {
        self.counters
    }

    /// The table set (inspection).
    #[must_use]
    pub fn tables(&self) -> &FlowTables {
        &self.tables
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &MaficConfig {
        &self.config
    }

    /// Approximate **peak** per-flow state this filter ever held, in
    /// bytes (SFT/NFT/PDT under the configured label mode). Survives the
    /// `PushbackStop` flush — the deployment-cost proxy reported by the
    /// workload layer.
    #[must_use]
    pub fn approx_state_bytes(&self) -> usize {
        self.tables
            .approx_peak_bytes(self.config.label_mode.stored_bytes())
    }

    /// Activates the defense for `victim` (equivalent to receiving a
    /// `PushbackStart`; public for direct harness control).
    pub fn activate(&mut self, victim: Addr) {
        self.active = Some(victim);
    }

    /// Deactivates and flushes all tables. Pending wheel timers are left
    /// to fire stale (and be ignored); flow ids stay valid.
    pub fn deactivate(&mut self) {
        self.active = None;
        self.tables.flush();
        self.tracker.clear();
    }

    /// Per-flow RTT estimate from the packet's timestamp option.
    ///
    /// The sender stamps `ts` at transmission; `now − ts` is the one-way
    /// source→router delay, so the source→router→source round trip the
    /// probe must cover is approximately twice that. Clamped to the
    /// configured bounds; flows without a usable timestamp get the
    /// default RTT.
    fn estimate_rtt(&self, packet: &Packet, now: SimTime) -> SimDuration {
        let ts = match packet.kind {
            PacketKind::TcpData { ts, .. } | PacketKind::TcpAck { ts, .. } => ts,
            PacketKind::Udp | PacketKind::ProbeDupAck { .. } | PacketKind::Pushback(_) => {
                SimTime::ZERO
            }
        };
        let estimate = if ts == SimTime::ZERO {
            self.config.default_rtt
        } else {
            now.saturating_since(ts).mul_f64(2.0)
        };
        estimate.max(self.config.min_rtt).min(self.config.max_rtt)
    }

    fn coin(&mut self) -> bool {
        self.rng.gen::<f64>() < self.config.drop_probability
    }

    fn emit_probe(&mut self, key: FlowKey, victim: Addr, ctx: &mut FilterCtx<'_>) {
        // Duplicate ACKs claim to come from the destination the flow is
        // sending to (the victim side), addressed to the claimed source.
        let probe = Packet {
            id: ctx.fresh_packet_id(),
            key: FlowKey::new(victim, key.src, key.dst_port, key.src_port),
            kind: PacketKind::ProbeDupAck {
                count: self.config.probe_dup_acks,
            },
            size_bytes: self.config.probe_size,
            created_at: ctx.now(),
            provenance: Provenance::infrastructure(),
            hops: 0,
        };
        ctx.emit_packet(probe);
        self.counters.probes_sent += 1;
    }

    /// Applies the probation decision for `flow`: rate decreased → NFT,
    /// otherwise → PDT. Returns `true` if the flow was declared nice.
    ///
    /// The arrival rate over the first half of the probation window is
    /// compared against the second half. A compliant TCP source drains
    /// its in-flight window during the first RTT and then stalls (its
    /// packets are being dropped and the probe told it to back off), so
    /// the second half collapses; an unresponsive zombie keeps both
    /// halves equal. A flow silent in both halves stopped entirely —
    /// maximally responsive.
    fn decide(&mut self, flow: FlowId, now: SimTime, ctx: &mut FilterCtx<'_>) -> bool {
        let Some(entry) = self.tables.sft_remove(flow) else {
            return false;
        };
        let half = entry.deadline.saturating_since(entry.probe_started) / 2;
        let mid = entry.probe_started + half;
        let first = self.tracker.count_in(flow, mid, half);
        let second = self.tracker.count_in(flow, entry.deadline, half);
        let responsive = if first == 0 && second == 0 {
            true
        } else {
            (second as f64) <= self.config.decrease_threshold * (first as f64)
        };
        if responsive {
            self.tables.nft_insert(flow, now);
            self.counters.flows_nice += 1;
            ctx.note_flow(StatNote::FlowDeclaredNice, entry.key);
            if let Some(period) = self.config.nft_revalidate_after {
                // Anti-pulsing extension: evict from the NFT later so the
                // next packet re-enters probation.
                ctx.schedule_flow_timer(period, flow, TIMER_REVALIDATE);
                self.counters.timers_armed += 1;
            }
            true
        } else {
            self.tables.pdt_insert(flow, PdtReason::Unresponsive);
            self.counters.flows_malicious += 1;
            ctx.note_flow(StatNote::FlowDeclaredMalicious, entry.key);
            false
        }
    }

    /// Puts a fresh flow on probation: SFT entry + probe + wheel timer.
    fn start_probation(
        &mut self,
        flow: FlowId,
        packet: &Packet,
        victim: Addr,
        ctx: &mut FilterCtx<'_>,
    ) {
        let now = ctx.now();
        let rtt = self.estimate_rtt(packet, now);
        let timer = rtt.mul_f64(self.config.timer_rtt_multiplier);
        // Baseline: the flow's rate over one RTT *before* this packet.
        let baseline_rate = self.tracker.rate_in(flow, now, rtt);
        let entry = SftEntry {
            key: packet.key,
            probe_started: now,
            baseline_rate,
            rtt_estimate: rtt,
            deadline: now + timer,
            arrivals_since_probe: 0,
        };
        self.tables.sft_insert(flow, entry);
        ctx.schedule_flow_timer(timer, flow, TIMER_PROBATION);
        self.counters.timers_armed += 1;
        self.emit_probe(packet.key, victim, ctx);
        ctx.note(StatNote::ProbeSent, Some(packet));
    }
}

impl mafic_obs::StateHash for MaficCounters {
    fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        h.write_u64(self.examined);
        h.write_u64(self.dropped_probing);
        h.write_u64(self.dropped_permanent);
        h.write_u64(self.dropped_illegal);
        h.write_u64(self.probes_sent);
        h.write_u64(self.timers_armed);
        h.write_u64(self.flows_nice);
        h.write_u64(self.flows_malicious);
    }
}

impl mafic_obs::StateHash for MaficFilter {
    fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        // The RNG is deliberately excluded from the *hash*: its draws
        // only influence observable state through drop decisions — which
        // the tables, tracker, and counters below already pin, so any
        // draw-sequence divergence surfaces there on the very next
        // classified packet. (Checkpoints do carry the RNG, via the
        // snapshot hooks — a restored run continues the stream mid-way.)
        match self.active {
            None => h.write_u8(0),
            Some(victim) => {
                h.write_u8(1);
                h.write_u32(victim.as_u32());
            }
        }
        self.tables.hash_state(h);
        self.tracker.hash_state(h);
        self.counters.hash_state(h);
    }
}

impl PacketFilter for MaficFilter {
    fn on_packet(
        &mut self,
        packet: &Packet,
        env: &PacketEnv,
        ctx: &mut FilterCtx<'_>,
    ) -> FilterAction {
        let Some(victim) = self.active else {
            return FilterAction::Forward;
        };
        if packet.key.dst != victim {
            return FilterAction::Forward;
        }
        self.counters.examined += 1;
        ctx.note(StatNote::AtrSeen, Some(packet));

        let flow = env.flow;
        let now = ctx.now();
        self.tracker.record(flow, now);

        // One slab probe classifies the flow; the borrow is reduced to a
        // copyable standing before any mutation below.
        let standing = match self.tables.state(flow) {
            Some(FlowState::Condemned(_)) => Standing::Condemned,
            Some(FlowState::Nice { .. }) => Standing::Nice,
            Some(FlowState::Suspicious(entry)) => Standing::Suspicious {
                deadline: entry.deadline,
            },
            None => Standing::New,
        };
        match standing {
            // 1. Permanently condemned flows.
            Standing::Condemned => {
                self.counters.dropped_permanent += 1;
                FilterAction::Drop(DropReason::FilterPermanent)
            }
            // 2. Flows that already passed the test.
            Standing::Nice => FilterAction::Forward,
            // 3. Flows on probation.
            Standing::Suspicious { deadline } => {
                if now >= deadline {
                    // Timer expired but the wheel event has not fired yet
                    // (or fires later this instant): classify now.
                    let nice = self.decide(flow, now, ctx);
                    return if nice {
                        FilterAction::Forward
                    } else {
                        self.counters.dropped_permanent += 1;
                        FilterAction::Drop(DropReason::FilterPermanent)
                    };
                }
                if let Some(entry) = self.tables.sft_get_mut(flow) {
                    entry.arrivals_since_probe += 1;
                }
                if self.coin() {
                    self.counters.dropped_probing += 1;
                    FilterAction::Drop(DropReason::FilterProbing)
                } else {
                    FilterAction::Forward
                }
            }
            // 4. New flow.
            Standing::New => {
                if !self.validator.is_legal(packet.key.src) {
                    self.tables.pdt_insert(flow, PdtReason::IllegalSource);
                    self.counters.dropped_illegal += 1;
                    self.counters.flows_malicious += 1;
                    ctx.note(StatNote::FlowDeclaredMalicious, Some(packet));
                    return FilterAction::Drop(DropReason::FilterIllegalSource);
                }
                if self.coin() {
                    self.start_probation(flow, packet, victim, ctx);
                    self.counters.dropped_probing += 1;
                    FilterAction::Drop(DropReason::FilterProbing)
                } else {
                    FilterAction::Forward
                }
            }
        }
    }

    fn on_flow_timer(&mut self, flow: FlowId, kind: u16, ctx: &mut FilterCtx<'_>) {
        if self.active.is_none() {
            return; // Stale fire after PushbackStop.
        }
        match kind {
            TIMER_REVALIDATE => {
                // Re-validation: drop the nice verdict so the flow's next
                // packet re-enters the new-flow path and may be re-probed.
                // A timer armed for an *earlier* nice verdict (e.g. before
                // a PushbackStop flush and re-activation) is stale: the
                // current verdict has not yet lived its full period.
                let Some(period) = self.config.nft_revalidate_after else {
                    return;
                };
                if let Some(since) = self.tables.nft_since(flow) {
                    if ctx.now() >= since + period {
                        let _ = self.tables.nft_remove(flow);
                    }
                }
            }
            TIMER_PROBATION => {
                let now = ctx.now();
                if let Some(entry) = self.tables.sft_get(flow) {
                    if now >= entry.deadline {
                        let _ = self.decide(flow, now, ctx);
                    }
                }
                // Absent entry: the packet path classified first, or the
                // tables were flushed — a stale fire either way.
            }
            _ => {}
        }
    }

    fn on_control(&mut self, msg: &FilterControl, _ctx: &mut FilterCtx<'_>) {
        match msg {
            FilterControl::PushbackStart { victim } => self.activate(*victim),
            FilterControl::PushbackStop => self.deactivate(),
        }
    }

    fn snap_save(&self, w: &mut mafic_obs::SnapWriter) {
        use mafic_obs::SnapshotState as _;
        match self.active {
            None => w.write_u8(0),
            Some(victim) => {
                w.write_u8(1);
                w.write_u32(victim.as_u32());
            }
        }
        for word in self.rng.state() {
            w.write_u64(word);
        }
        self.tables.snap_save(w);
        self.tracker.snap_save(w);
        w.write_u64(self.counters.examined);
        w.write_u64(self.counters.dropped_probing);
        w.write_u64(self.counters.dropped_permanent);
        w.write_u64(self.counters.dropped_illegal);
        w.write_u64(self.counters.probes_sent);
        w.write_u64(self.counters.timers_armed);
        w.write_u64(self.counters.flows_nice);
        w.write_u64(self.counters.flows_malicious);
    }

    fn snap_restore(
        &mut self,
        r: &mut mafic_obs::SnapReader<'_>,
    ) -> Result<(), mafic_obs::SnapError> {
        use mafic_obs::SnapshotState as _;
        self.active = match r.read_u8()? {
            0 => None,
            1 => Some(Addr::new(r.read_u32()?)),
            tag => {
                return Err(mafic_obs::SnapError::Malformed(format!(
                    "mafic-active tag {tag}"
                )))
            }
        };
        let state = [r.read_u64()?, r.read_u64()?, r.read_u64()?, r.read_u64()?];
        self.rng = SmallRng::from_state(state);
        self.tables.snap_restore(r)?;
        self.tracker.snap_restore(r)?;
        self.counters.examined = r.read_u64()?;
        self.counters.dropped_probing = r.read_u64()?;
        self.counters.dropped_permanent = r.read_u64()?;
        self.counters.dropped_illegal = r.read_u64()?;
        self.counters.probes_sent = r.read_u64()?;
        self.counters.timers_armed = r.read_u64()?;
        self.counters.flows_nice = r.read_u64()?;
        self.counters.flows_malicious = r.read_u64()?;
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mafic_netsim::testkit::FilterHarness;
    use mafic_netsim::AgentId;

    const VICTIM: Addr = Addr::new(0x0AC8_0001); // 10.200.0.1

    fn config() -> MaficConfig {
        MaficConfig {
            default_rtt: SimDuration::from_millis(50),
            min_rtt: SimDuration::from_millis(20),
            max_rtt: SimDuration::from_millis(200),
            seed: 42,
            ..MaficConfig::default()
        }
    }

    fn filter(pd: f64) -> MaficFilter {
        let mut c = config();
        c.drop_probability = pd;
        MaficFilter::new(c, AddressValidator::AllowAll)
    }

    fn active_filter(pd: f64) -> MaficFilter {
        let mut f = filter(pd);
        f.activate(VICTIM);
        f
    }

    fn pkt(src_port: u16, now: SimTime) -> Packet {
        Packet {
            id: u64::from(src_port) * 1000 + now.as_nanos() % 1000,
            key: FlowKey::new(Addr::from_octets(10, 1, 0, 1), VICTIM, src_port, 80),
            kind: PacketKind::TcpData {
                seq: 0,
                ts: now,
                ts_echo: SimTime::ZERO,
            },
            size_bytes: 500,
            created_at: now,
            provenance: Provenance {
                origin: AgentId::from_index(0),
                is_attack: false,
            },
            hops: 0,
        }
    }

    #[test]
    fn inactive_filter_forwards_everything() {
        let mut h = FilterHarness::new();
        let mut f = filter(1.0);
        let fx = h.offer_transit(&mut f, &pkt(1, h.now));
        assert_eq!(fx.action, Some(FilterAction::Forward));
        assert_eq!(f.counters().examined, 0);
    }

    #[test]
    fn non_victim_traffic_is_untouched() {
        let mut h = FilterHarness::new();
        let mut f = active_filter(1.0);
        let mut p = pkt(1, h.now);
        p.key.dst = Addr::from_octets(10, 1, 0, 2);
        let fx = h.offer_transit(&mut f, &p);
        assert_eq!(fx.action, Some(FilterAction::Forward));
        assert_eq!(f.counters().examined, 0);
    }

    #[test]
    fn first_drop_starts_probation_with_probe_and_timer() {
        let mut h = FilterHarness::new();
        let mut f = active_filter(1.0); // Pd = 1 => deterministic drop
        h.advance(SimDuration::from_millis(10));
        let p = pkt(1, h.now);
        let fx = h.offer_transit(&mut f, &p);
        assert_eq!(
            fx.action,
            Some(FilterAction::Drop(DropReason::FilterProbing))
        );
        assert_eq!(f.tables().sft_len(), 1);
        assert_eq!(fx.emitted.len(), 1, "probe burst emitted");
        let probe = &fx.emitted[0];
        assert_eq!(probe.key.dst, p.key.src, "probe goes to claimed source");
        assert_eq!(probe.key.src, VICTIM, "probe claims to come from victim");
        assert!(matches!(probe.kind, PacketKind::ProbeDupAck { count: 3 }));
        assert_eq!(fx.flow_timers.len(), 1, "wheel timer armed");
        let (delay, flow, kind) = fx.flow_timers[0];
        // RTT from timestamp: now == ts => clamped to min_rtt (20ms), timer 2x.
        assert_eq!(delay, SimDuration::from_millis(40));
        assert_eq!(flow, h.intern(p.key), "timer carries the interned id");
        assert_eq!(kind, TIMER_PROBATION);
        assert!(fx.notes.iter().any(|(n, _)| *n == StatNote::ProbeSent));
    }

    #[test]
    fn pd_zero_never_drops() {
        let mut h = FilterHarness::new();
        let mut f = active_filter(0.0);
        for i in 0..50 {
            let fx = h.offer_transit(&mut f, &pkt(1, h.now));
            assert_eq!(fx.action, Some(FilterAction::Forward), "packet {i}");
        }
        assert_eq!(f.tables().sft_len(), 0, "never sampled into SFT");
    }

    #[test]
    fn illegal_source_goes_straight_to_pdt() {
        let mut h = FilterHarness::new();
        let validator = AddressValidator::Prefixes(vec![(Addr::from_octets(10, 1, 0, 0), 16)]);
        let mut f = MaficFilter::new(config(), validator);
        f.activate(VICTIM);
        let mut p = pkt(1, h.now);
        p.key.src = Addr::from_octets(192, 168, 0, 1);
        let fx = h.offer_transit(&mut f, &p);
        assert_eq!(
            fx.action,
            Some(FilterAction::Drop(DropReason::FilterIllegalSource))
        );
        assert_eq!(f.tables().pdt_len(), 1);
        // Subsequent packets of the same flow die as permanent drops.
        let fx2 = h.offer_transit(&mut f, &p);
        assert_eq!(
            fx2.action,
            Some(FilterAction::Drop(DropReason::FilterPermanent))
        );
    }

    /// Drives a responsive flow: heavy arrivals before the probe, silence
    /// afterwards. It must land in the NFT.
    #[test]
    fn responsive_flow_is_declared_nice() {
        let mut h = FilterHarness::new();
        let mut f = active_filter(1.0);
        // Build up a baseline: Pd=1 means the very first packet starts
        // probation, so feed the baseline *before* activation.
        f.deactivate();
        f.activate(VICTIM);
        let p0 = pkt(1, h.now);
        let fx = h.offer_transit(&mut f, &p0);
        assert_eq!(fx.flow_timers.len(), 1);
        let (delay, flow, kind) = fx.flow_timers[0];
        // No further packets arrive (sender stalled) — rate after probe is 0.
        h.advance(delay);
        let fx2 = h.fire_flow_timer(&mut f, flow, kind);
        assert_eq!(f.tables().nft_len(), 1, "flow declared nice");
        assert_eq!(f.tables().sft_len(), 0);
        assert!(fx2
            .notes
            .iter()
            .any(|(n, _)| *n == StatNote::FlowDeclaredNice));
        // Nice flows now pass freely.
        let fx3 = h.offer_transit(&mut f, &pkt(1, h.now));
        assert_eq!(fx3.action, Some(FilterAction::Forward));
    }

    /// Drives an unresponsive flow: steady arrivals before *and* after
    /// the probe. It must land in the PDT.
    #[test]
    fn unresponsive_flow_is_condemned() {
        let mut h = FilterHarness::new();
        let mut f = active_filter(1.0);
        // Steady 100 pps arrivals; the first packet starts probation and
        // the arrivals continue right through the probation window, so the
        // decision fires on the packet path once the deadline passes.
        let mut all_notes = Vec::new();
        for i in 0..20 {
            let fx = h.offer_transit(&mut f, &pkt(1, h.now));
            if i == 0 {
                assert_eq!(fx.flow_timers.len(), 1);
            }
            all_notes.extend(fx.notes);
            h.advance(SimDuration::from_millis(10));
        }
        assert_eq!(f.tables().pdt_len(), 1, "flow condemned");
        assert!(all_notes
            .iter()
            .any(|(n, _)| *n == StatNote::FlowDeclaredMalicious));
        // All subsequent packets are dropped permanently.
        let fx2 = h.offer_transit(&mut f, &pkt(1, h.now));
        assert_eq!(
            fx2.action,
            Some(FilterAction::Drop(DropReason::FilterPermanent))
        );
    }

    #[test]
    fn packet_path_classifies_after_deadline_without_timer() {
        let mut h = FilterHarness::new();
        let mut f = active_filter(1.0);
        let fx = h.offer_transit(&mut f, &pkt(1, h.now));
        let (delay, _flow, _kind) = fx.flow_timers[0];
        // Advance past the deadline; next packet forces the decision even
        // though the timer never fired. Flow was silent => nice.
        h.advance(delay + SimDuration::from_millis(1));
        let fx2 = h.offer_transit(&mut f, &pkt(1, h.now));
        assert_eq!(f.tables().nft_len(), 1);
        assert_eq!(fx2.action, Some(FilterAction::Forward));
    }

    #[test]
    fn unresponsive_decision_on_packet_path_drops() {
        let mut h = FilterHarness::new();
        let mut f = active_filter(1.0);
        // Continuous 250 pps arrivals straight through the 100 ms probation
        // window (ts == ZERO at t=0 gives the 50 ms default RTT, 2x timer).
        // The packet arriving after the deadline forces the decision on the
        // packet path, with both window halves equally full.
        for _ in 0..30 {
            let _ = h.offer_transit(&mut f, &pkt(1, h.now));
            h.advance(SimDuration::from_millis(4));
        }
        assert_eq!(f.tables().pdt_len(), 1, "steady flow must be condemned");
        let fx = h.offer_transit(&mut f, &pkt(1, h.now));
        assert_eq!(
            fx.action,
            Some(FilterAction::Drop(DropReason::FilterPermanent))
        );
    }

    #[test]
    fn pushback_stop_flushes_tables() {
        let mut h = FilterHarness::new();
        let mut f = active_filter(1.0);
        let _ = h.offer_transit(&mut f, &pkt(1, h.now));
        assert_eq!(f.tables().sft_len(), 1);
        let _ = h.control(&mut f, &FilterControl::PushbackStop);
        assert!(!f.is_active());
        assert_eq!(f.tables().sft_len(), 0);
        // Inactive again: everything forwards.
        let fx = h.offer_transit(&mut f, &pkt(1, h.now));
        assert_eq!(fx.action, Some(FilterAction::Forward));
    }

    #[test]
    fn pushback_start_control_activates() {
        let mut h = FilterHarness::new();
        let mut f = filter(1.0);
        let _ = h.control(&mut f, &FilterControl::PushbackStart { victim: VICTIM });
        assert!(f.is_active());
        assert_eq!(f.victim(), Some(VICTIM));
        let fx = h.offer_transit(&mut f, &pkt(1, h.now));
        assert!(matches!(fx.action, Some(FilterAction::Drop(_))));
    }

    #[test]
    fn stale_timer_after_decision_is_harmless() {
        let mut h = FilterHarness::new();
        let mut f = active_filter(1.0);
        let fx = h.offer_transit(&mut f, &pkt(1, h.now));
        let (delay, flow, kind) = fx.flow_timers[0];
        h.advance(delay + SimDuration::from_millis(5));
        // Packet path decides first…
        let _ = h.offer_transit(&mut f, &pkt(1, h.now));
        let nice_before = f.counters().flows_nice;
        // …then the wheel timer fires late.
        let _ = h.fire_flow_timer(&mut f, flow, kind);
        assert_eq!(f.counters().flows_nice, nice_before, "no double decision");
    }

    #[test]
    fn stale_timer_after_flush_is_harmless() {
        let mut h = FilterHarness::new();
        let mut f = active_filter(1.0);
        let fx = h.offer_transit(&mut f, &pkt(1, h.now));
        let (delay, flow, kind) = fx.flow_timers[0];
        // Stop and restart the defense: tables flushed, id still valid.
        let _ = h.control(&mut f, &FilterControl::PushbackStop);
        let _ = h.control(&mut f, &FilterControl::PushbackStart { victim: VICTIM });
        h.advance(delay);
        let fx2 = h.fire_flow_timer(&mut f, flow, kind);
        assert_eq!(f.counters().flows_nice, 0, "stale probation fire ignored");
        assert_eq!(f.counters().flows_malicious, 0);
        assert!(fx2.notes.is_empty());
    }

    #[test]
    fn stale_revalidation_from_previous_activation_is_ignored() {
        let mut h = FilterHarness::new();
        let mut c = config();
        c.drop_probability = 1.0;
        c.nft_revalidate_after = Some(SimDuration::from_millis(300));
        let mut f = MaficFilter::new(c, AddressValidator::AllowAll);
        f.activate(VICTIM);
        // First activation: flow goes nice, revalidate timer armed.
        let fx = h.offer_transit(&mut f, &pkt(1, h.now));
        let (delay, flow, kind) = fx.flow_timers[0];
        h.advance(delay);
        let fx2 = h.fire_flow_timer(&mut f, flow, kind);
        let (reval_delay, reval_flow, reval_kind) = fx2.flow_timers[0];
        // Flush and restart the defense; the flow earns a fresh verdict
        // later than the first one.
        let _ = h.control(&mut f, &FilterControl::PushbackStop);
        let _ = h.control(&mut f, &FilterControl::PushbackStart { victim: VICTIM });
        h.advance(SimDuration::from_millis(100));
        let fx3 = h.offer_transit(&mut f, &pkt(1, h.now));
        let (delay2, flow2, kind2) = fx3.flow_timers[0];
        assert_eq!(flow2, flow, "same interned id across activations");
        h.advance(delay2);
        let _ = h.fire_flow_timer(&mut f, flow2, kind2);
        assert_eq!(f.tables().nft_len(), 1, "fresh nice verdict");
        // The stale revalidate timer from the first activation fires now
        // (its absolute deadline precedes the fresh verdict's): ignored.
        let _ = h.fire_flow_timer(&mut f, reval_flow, reval_kind);
        assert_eq!(
            f.tables().nft_len(),
            1,
            "stale revalidation must not evict the fresh verdict"
        );
        // The fresh verdict's own revalidation still works once due.
        h.advance(reval_delay);
        let _ = h.fire_flow_timer(&mut f, reval_flow, reval_kind);
        assert_eq!(f.tables().nft_len(), 0, "live revalidation evicts");
    }

    #[test]
    fn distinct_flows_get_distinct_probation() {
        let mut h = FilterHarness::new();
        let mut f = active_filter(1.0);
        for port in 1..=5 {
            let _ = h.offer_transit(&mut f, &pkt(port, h.now));
        }
        assert_eq!(f.tables().sft_len(), 5);
        assert_eq!(f.counters().probes_sent, 5);
    }

    #[test]
    fn counters_track_examined_packets() {
        let mut h = FilterHarness::new();
        let mut f = active_filter(0.0);
        for _ in 0..7 {
            let _ = h.offer_transit(&mut f, &pkt(1, h.now));
        }
        assert_eq!(f.counters().examined, 7);
    }

    #[test]
    fn revalidation_evicts_nice_flows_for_reprobing() {
        let mut h = FilterHarness::new();
        let mut c = config();
        c.drop_probability = 1.0;
        c.nft_revalidate_after = Some(SimDuration::from_millis(300));
        let mut f = MaficFilter::new(c, AddressValidator::AllowAll);
        f.activate(VICTIM);
        // Probation, then silence => nice.
        let fx = h.offer_transit(&mut f, &pkt(1, h.now));
        let (delay, flow, kind) = fx.flow_timers[0];
        assert_eq!(kind, TIMER_PROBATION);
        h.advance(delay);
        let fx2 = h.fire_flow_timer(&mut f, flow, kind);
        assert_eq!(f.tables().nft_len(), 1);
        // The nice verdict armed a revalidation timer on the wheel.
        let (reval_delay, reval_flow, reval_kind) = fx2.flow_timers[0];
        assert_eq!(reval_delay, SimDuration::from_millis(300));
        assert_eq!(reval_flow, flow, "same interned id across timers");
        assert_eq!(reval_kind, TIMER_REVALIDATE);
        h.advance(reval_delay);
        let _ = h.fire_flow_timer(&mut f, reval_flow, reval_kind);
        assert_eq!(f.tables().nft_len(), 0, "flow evicted for re-probing");
        // Its next packet re-enters the new-flow path: dropped + probed.
        let fx3 = h.offer_transit(&mut f, &pkt(1, h.now));
        assert_eq!(
            fx3.action,
            Some(FilterAction::Drop(DropReason::FilterProbing))
        );
        assert_eq!(fx3.emitted.len(), 1, "fresh probe burst");
        assert_eq!(f.tables().sft_len(), 1);
    }

    #[test]
    fn without_revalidation_nice_flows_stay_nice() {
        let mut h = FilterHarness::new();
        let mut f = active_filter(1.0);
        let fx = h.offer_transit(&mut f, &pkt(1, h.now));
        let (delay, flow, kind) = fx.flow_timers[0];
        h.advance(delay);
        let fx2 = h.fire_flow_timer(&mut f, flow, kind);
        assert!(
            fx2.flow_timers.is_empty(),
            "no revalidation timer by default"
        );
        assert_eq!(f.tables().nft_len(), 1);
    }

    fn state_digest(f: &MaficFilter) -> u64 {
        use mafic_obs::StateHash as _;
        let mut d = mafic_obs::Fnv64::new();
        f.hash_state(&mut d);
        d.finish()
    }

    #[test]
    fn snapshot_round_trips_tables_tracker_and_rng() {
        let mut h = FilterHarness::new();
        let mut f = active_filter(0.5);
        // Build up real state: tracked arrivals, SFT entries, timers.
        for port in 1..=6u16 {
            let _ = h.offer_transit(&mut f, &pkt(port, h.now));
            h.advance(SimDuration::from_millis(3));
        }
        let mut w = mafic_obs::SnapWriter::new();
        f.snap_save(&mut w);
        let bytes = w.into_bytes();

        // Restore into a filter built with a different RNG seed to prove
        // the snapshot carries the RNG words, not just the counters.
        let mut c = config();
        c.drop_probability = 0.5;
        c.seed = 777;
        let mut g = MaficFilter::new(c, AddressValidator::AllowAll);
        let mut r = mafic_obs::SnapReader::new(&bytes);
        g.snap_restore(&mut r).expect("restore");
        assert!(r.is_empty(), "trailing bytes after restore");
        assert_eq!(state_digest(&f), state_digest(&g));

        // Both continue identically: same verdicts, same effects. A
        // fresh harness re-interns the continuation flows in the same
        // order, so the dense ids line up with the restored tables.
        let mut h2 = FilterHarness::new();
        h2.advance(h.now.saturating_since(SimTime::ZERO));
        for port in 1..=12u16 {
            let fx = h.offer_transit(&mut f, &pkt(port, h.now));
            let gx = h2.offer_transit(&mut g, &pkt(port, h2.now));
            assert_eq!(fx.action, gx.action, "diverged at port {port}");
            h.advance(SimDuration::from_millis(2));
            h2.advance(SimDuration::from_millis(2));
        }
        assert_eq!(state_digest(&f), state_digest(&g));
    }
}
