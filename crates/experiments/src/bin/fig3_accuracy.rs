//! Regenerates Fig. 3(a) and Fig. 3(b): attack-packet dropping accuracy.

use mafic_experiments::{figures, EngineConfig};

fn main() {
    let cfg = EngineConfig::from_env_or_exit();
    for result in [figures::fig3a(&cfg), figures::fig3b(&cfg)] {
        match result {
            Ok(fig) => println!("{fig}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}
