//! Scenario execution with the periodic pushback monitor.
//!
//! The runner steps the simulation in monitor-interval increments. Each
//! step it harvests the per-router LogLog sketch epochs (exactly what the
//! paper's `TrafficMonitor` does), builds the traffic matrix, and feeds
//! the victim detector. On an alarm it sends `PushbackStart` control
//! messages to the identified Attack Transit Routers; the MAFIC filters
//! there take over. At the end it assembles the full [`MetricsReport`].
//!
//! In multi-domain scenarios the same loop also drives the
//! **inter-domain cascade**: every interval it drains each domain's
//! control channel and rate meters, steps the domain coordinators, and
//! applies their actions — activating upstream ATR filters via local
//! control messages and sending `PushbackRequest` / `Refresh` /
//! `Withdraw` upstream **as routed packets** over the inter-domain
//! links (the control plane shares the data plane's deterministic event
//! order; see ARCHITECTURE.md).

use crate::error::WorkloadError;
use crate::scenario::{PushbackPlan, PushbackUpstream, Scenario};
use crate::spec::{DetectionMode, ScenarioSpec};
use mafic::{DefensePolicy, LogLogTap, MaficFilter, ProportionalFilter, RateLimitFilter};
use mafic_adversary::{AdversaryController, AdversaryDirective, SourceFeedback};
use mafic_loglog::{DetectorConfig, RouterSketch, TrafficMatrix, VictimDetector, VictimVerdict};
use mafic_metrics::{
    victim_arrival_series, victim_bandwidth_series, BandwidthPoint, ControlPlaneReport,
    MeasureWindows, MetricsReport, PolicyCostReport,
};
use mafic_netsim::{
    Addr, ControlMsg, ControlVerb, FilterControl, FlowKey, NodeId, PacketKind, RequesterId,
    SimDuration, SimTime, Simulator,
};
use mafic_obs::{
    fnv64, Fnv64, IntervalProbe, LedgerBuilder, LedgerHeader, RunLedger, SnapError, SnapReader,
    SnapWriter, Snapshot, SnapshotHeader, SnapshotState as _, StateHash, SNAP_VERSION,
};
use mafic_pushback::{ControlChannel, ControlPlane, LifecycleState, PushbackAction};
use mafic_transport::UnresponsiveSender;

/// Propagation allowance for intra-domain control messages.
const CONTROL_DELAY: SimDuration = SimDuration::from_millis(5);
/// On-wire size of one inter-domain pushback packet.
const PUSHBACK_PACKET_BYTES: u32 = 64;
/// Port used by the coordinator control flows.
const PUSHBACK_PORT: u16 = 9;
/// Victim-bound aggregate (bytes/s) a malicious requester claims in its
/// forged requests — flood-scale by design, so an honest upstream whose
/// own meter sees only normal traffic cannot corroborate it.
const MALICIOUS_CLAIM_BPS: u64 = 8_000_000;
/// Salt mixed into the run seed for the adversary controller's RNG, so
/// adversary randomness never correlates with workload provisioning
/// (which derives its streams from the raw seed).
const ADVERSARY_SEED_SALT: u64 = 0xAD5E_A57A_7E61_C0DE;

/// Everything a finished run produces.
#[derive(Debug)]
pub struct RunOutcome {
    /// The paper's five metrics for this run (plus residual/collateral).
    pub report: MetricsReport,
    /// Offered-load series at the victim router (the paper's Fig. 4b).
    pub series: Vec<BandwidthPoint>,
    /// Delivered-goodput series at the victim host.
    pub goodput_series: Vec<BandwidthPoint>,
    /// When the pushback was triggered (`None` if never).
    pub triggered_at: Option<SimTime>,
    /// Routers that received a pushback request (every domain), sorted
    /// and deduplicated.
    pub atr_nodes: Vec<NodeId>,
    /// Inter-domain escalations: `(activation time, domain index)` in
    /// [`mafic_topology::Internet::domains`] order. Empty in
    /// single-domain runs.
    pub escalations: Vec<(SimTime, usize)>,
    /// Deepest pushback level whose defense activated (0 = the victim
    /// domain only).
    pub max_pushback_depth: u32,
    /// Deployment-cost proxies per distinct defense policy (table state
    /// bytes, timer events, probes), sorted by policy label. One row per
    /// policy actually deployed; empty only for a scenario with no
    /// defense filters at all.
    pub policy_costs: Vec<PolicyCostReport>,
    /// Control-plane health counters: requests, denials by reason,
    /// forged envelopes, stops, and the stand-down latency. All zeros
    /// in single-domain runs (no inter-domain control plane exists).
    pub control: ControlPlaneReport,
    /// When the victim domain stood its defense down after observing
    /// the flood subside (`None` if it never did).
    pub stood_down_at: Option<SimTime>,
    /// Total packets injected during the run.
    pub packets_sent: u64,
    /// Total packets delivered during the run.
    pub packets_delivered: u64,
    /// The per-interval chained state-hash ledger, recorded when
    /// [`ScenarioSpec::ledger`] is set; `None` otherwise. Two runs of
    /// the same spec must produce byte-identical ledgers — diff them
    /// with [`mafic_obs::diff_ledgers`] to name the first diverging
    /// interval and component.
    pub ledger: Option<RunLedger>,
    /// The last simulator trace events (oldest first), rendered as
    /// display strings. Empty unless [`ScenarioSpec::trace_capacity`]
    /// is positive.
    pub trace_tail: Vec<String>,
    /// The encoded state snapshot captured at the first monitor-interval
    /// boundary at or after [`ScenarioSpec::checkpoint_at`]; `None`
    /// when no checkpoint was requested. Feed the bytes to
    /// [`restore_run`] to rebuild the mid-run scenario, or to
    /// [`restore_branch`] to warm-start a spec variant from the shared
    /// prefix.
    pub checkpoint: Option<Vec<u8>>,
}

impl RunOutcome {
    /// Convenience accessor: did the defense ever engage?
    #[must_use]
    pub fn defense_engaged(&self) -> bool {
        self.triggered_at.is_some()
    }
}

/// Sorts and deduplicates instructed routers. The trigger paths (the
/// sketch detector, the victim-escalation fallback, fixed-time
/// activation) and the inter-domain cascade (which may re-activate a
/// boundary after a lease lapse) each append to the list independently,
/// so the raw log can name a router more than once.
fn sorted_unique(mut nodes: Vec<NodeId>) -> Vec<NodeId> {
    nodes.sort();
    nodes.dedup();
    nodes
}

/// Re-prices a pushback envelope for a target `level_cost` pushback
/// levels away: the coordinator already charged one hop, each *extra*
/// level crossed (skipped non-participating domains) is charged from
/// the carried budget. Returns `None` when the budget cannot cover the
/// distance — the request is not sent and the coverage gap stands.
/// `Withdraw`, `Stop`, and `Deny` carry no budget and always forward.
fn charge_skip_cost(msg: ControlMsg, level_cost: u32) -> Option<ControlMsg> {
    let extra = level_cost.saturating_sub(1);
    if extra == 0 {
        return Some(msg);
    }
    let reprice = |budget: u8| -> Option<u8> {
        (u32::from(budget) >= extra).then(|| budget - u8::try_from(extra).unwrap_or(u8::MAX))
    };
    let verb = match msg.verb {
        ControlVerb::Request {
            victim,
            aggregate_bps,
            budget,
        } => ControlVerb::Request {
            victim,
            aggregate_bps,
            budget: reprice(budget)?,
        },
        ControlVerb::Refresh { victim, budget } => ControlVerb::Refresh {
            victim,
            budget: reprice(budget)?,
        },
        verb @ (ControlVerb::Withdraw { .. }
        | ControlVerb::Stop { .. }
        | ControlVerb::Deny { .. }
        | ControlVerb::Report { .. }) => verb,
    };
    Some(ControlMsg { verb, ..msg })
}

/// The deterministic in-band [`ControlPlane`]: every envelope a
/// coordinator emits is injected as a routed `PacketKind::Pushback`
/// packet at the appropriate local router, then crosses the simulated
/// inter-domain links under the same total event order as the data
/// plane (ARCHITECTURE.md rule 2). Upstream sends fan out over the
/// domain's effective escalation targets (skip costs charged);
/// downstream replies are injected at the domain's gateway and route to
/// the requester's control address.
struct InBandPlane<'a> {
    sim: &'a mut Simulator,
    now: SimTime,
    ctrl_addr: Addr,
    gateway: NodeId,
    upstream: &'a [PushbackUpstream],
    /// Counts every `Request` envelope actually injected (one per
    /// upstream target that the skip-cost pricing admitted) — the
    /// denominator the per-receiver denial tallies are compared
    /// against.
    requests_out: &'a mut u64,
}

impl InBandPlane<'_> {
    fn inject(&mut self, at: NodeId, dst: Addr, msg: ControlMsg) {
        let key = FlowKey::new(self.ctrl_addr, dst, PUSHBACK_PORT, PUSHBACK_PORT);
        self.sim.inject_packet(
            at,
            key,
            PacketKind::Pushback(msg),
            PUSHBACK_PACKET_BYTES,
            false,
            self.now,
        );
    }
}

impl ControlPlane for InBandPlane<'_> {
    fn send_upstream(&mut self, msg: ControlMsg) {
        self.send_upstream_except(msg, &[]);
    }

    fn send_downstream(&mut self, to: RequesterId, msg: ControlMsg) {
        self.inject(self.gateway, to.addr(), msg);
    }

    fn upstream_count(&self) -> usize {
        self.upstream.len().max(1)
    }

    fn send_upstream_except(&mut self, msg: ControlMsg, except: &[RequesterId]) {
        for u in 0..self.upstream.len() {
            let up = self.upstream[u];
            // A target that already denied this victim keeps its
            // refusal: refreshes stop flowing to it while the
            // corroborated siblings keep their leases alive.
            if except.iter().any(|id| id.addr() == up.ctrl_addr) {
                continue;
            }
            // Skipping over non-participating domains costs extra
            // budget — one hop per level crossed. A target too far for
            // the remaining budget gets no envelope at all (the
            // coverage gap holds).
            let Some(msg) = charge_skip_cost(msg, up.level_cost) else {
                continue;
            };
            if matches!(msg.verb, ControlVerb::Request { .. }) {
                *self.requests_out += 1;
            }
            self.inject(up.border, up.ctrl_addr, msg);
        }
    }
}

/// Control-plane bookkeeping the runner accumulates across intervals.
#[derive(Debug, Default)]
struct ControlAccounting {
    /// `Request` envelopes injected into the control plane, honest and
    /// malicious alike (per envelope, not per send decision — a fanout
    /// sends one per admitted upstream target).
    requests_injected: u64,
    /// Forged-request campaigns a malicious domain has run so far
    /// (doubles as its envelope nonce, which must advance per send).
    malicious_requests: u64,
    /// When the victim's coordinator *first* entered `StandingDown`.
    stood_down_at: Option<SimTime>,
    /// First interval boundary at which, after the stand-down, every
    /// coordinator in the chain was idle again (zero live leases).
    teardown_done_at: Option<SimTime>,
    /// Wave-scoped stand-down latch: set when the victim's coordinator
    /// enters `StandingDown`, cleared by the runner when the teardown
    /// reaches `Idle` and the trigger re-arms. While set, the latched
    /// trigger must not restart the coordinator. (Unlike
    /// [`stood_down_at`](ControlAccounting::stood_down_at), which keeps
    /// the first wave's timestamp for reporting, this flag resets every
    /// wave — the fix that lets a second flood re-engage the defense.)
    defense_down: bool,
}

/// Sums the deployment-cost proxies of every defense filter, grouped by
/// policy label (sorted — deterministic output). Reads the filters
/// post-run; every filter type reports its own `approx_state_bytes`
/// (peak state for MAFIC, so a defense that stood down and flushed
/// still reports what it cost while it ran).
fn collect_policy_costs(scenario: &Scenario) -> Vec<PolicyCostReport> {
    use std::collections::BTreeMap;
    // Collateral attribution: legitimate losses split by the policy tier
    // that caused them. The drop reasons map onto policy labels — MAFIC
    // owns probing/permanent-table/illegal drops, the proportional
    // baseline its own bucket, the rate limit its own — while queue
    // overflow belongs to no filter and is reported as shared context.
    let mut legit_mafic = 0u64;
    let mut legit_proportional = 0u64;
    let mut legit_rate_limit = 0u64;
    let mut legit_queue = 0u64;
    for (_key, rec) in scenario.sim.stats().flows() {
        if rec.is_attack {
            continue;
        }
        legit_mafic += rec.dropped_probing + rec.dropped_permanent + rec.dropped_illegal;
        legit_proportional += rec.dropped_proportional;
        legit_rate_limit += rec.dropped_rate_limited;
        legit_queue += rec.dropped_queue;
    }
    let mut rows: BTreeMap<&'static str, PolicyCostReport> = BTreeMap::new();
    let tally = |sim: &Simulator,
                 rows: &mut BTreeMap<&'static str, PolicyCostReport>,
                 policy: DefensePolicy,
                 atrs: &[(NodeId, usize)]| {
        if atrs.is_empty() {
            return;
        }
        let row = rows
            .entry(policy.label())
            .or_insert_with(|| PolicyCostReport {
                policy: policy.label().to_string(),
                domains: 0,
                filters: 0,
                table_bytes: 0,
                timer_events: 0,
                probes_sent: 0,
                legit_drops_filtered: 0,
                legit_drops_queue: legit_queue,
            });
        row.domains += 1;
        row.filters += atrs.len();
        for &(node, idx) in atrs {
            if let Some(f) = sim.filter::<MaficFilter>(node, idx) {
                row.table_bytes += f.approx_state_bytes() as u64;
                row.timer_events += f.counters().timers_armed;
                row.probes_sent += f.counters().probes_sent;
            } else if let Some(f) = sim.filter::<ProportionalFilter>(node, idx) {
                row.table_bytes += f.approx_state_bytes() as u64;
            } else if let Some(f) = sim.filter::<RateLimitFilter>(node, idx) {
                row.table_bytes += f.approx_state_bytes() as u64;
            } else {
                debug_assert!(false, "unaccounted filter type at {node:?}[{idx}]");
            }
        }
    };
    if let Some(plan) = scenario.pushback.as_ref() {
        for d in &plan.domains {
            tally(&scenario.sim, &mut rows, d.policy, &d.atrs);
        }
    } else {
        tally(
            &scenario.sim,
            &mut rows,
            scenario.spec.base_policy(),
            &scenario.droppers,
        );
    }
    for row in rows.values_mut() {
        row.legit_drops_filtered = match row.policy.as_str() {
            "mafic" => legit_mafic,
            "proportional" => legit_proportional,
            "rate-limit" => legit_rate_limit,
            _ => 0,
        };
    }
    rows.into_values().collect()
}

/// Reusable interval-loop buffers. The monitor steps thousands of
/// intervals per run; holding its scratch here (and recycling the tap
/// and channel buffers via the `*_into` drains) keeps the steady-state
/// loop allocation-free — the bench harness pins the resulting
/// allocation count end to end.
#[derive(Debug, Default)]
struct StepScratch {
    /// Landing buffer for one domain's drained control-channel inbox.
    inbox: Vec<(SimTime, ControlMsg)>,
    /// One domain's pushback actions for the current interval.
    actions: Vec<PushbackAction>,
    /// Inbox drains served by the recycled `inbox` buffer — exported as
    /// [`MetricsReport::scratch_inbox_drains`] and into the run ledger,
    /// so the bench harness and the ledger read the same number.
    drains: u64,
}

/// One monitor-interval step of the inter-domain cascade.
#[allow(clippy::too_many_arguments)]
fn step_pushback(
    sim: &mut Simulator,
    plan: &mut PushbackPlan,
    spec: &ScenarioSpec,
    victim: Addr,
    triggered: bool,
    observed_sources: f64,
    elapsed: SimDuration,
    atr_nodes: &mut Vec<NodeId>,
    escalations: &mut Vec<(SimTime, usize)>,
    max_depth: &mut u32,
    acct: &mut ControlAccounting,
    scratch: &mut StepScratch,
) {
    // The escalation budget carried in envelopes, capped to its wire
    // width. Shared by the honest victim start and the malicious
    // campaign's forged requests.
    let depth_budget =
        u8::try_from(spec.pushback_depth.min(u32::from(u8::MAX))).expect("capped to u8::MAX");
    // The victim domain's coordinator rides on the local defense: the
    // detector (or its fallback) starts it, with the spec's depth as
    // the escalation budget. Once the victim has stood the defense
    // down (flood subsided), the latched trigger must not restart it —
    // but the latch is per wave, so after the teardown completes and
    // the runner re-arms detection, a fresh trigger starts it again.
    if triggered && !acct.defense_down && !plan.domains[0].coordinator.is_defending() {
        plan.domains[0]
            .coordinator
            .local_start(victim, depth_budget);
    }
    // The victim tap's distinct-source cardinality — the subsidence
    // guard's secondary evidence against adversaries that fake a
    // subsided flood by parking bandwidth on a few surviving sources.
    plan.domains[0]
        .coordinator
        .set_observed_sources(observed_sources);
    let interval_secs = elapsed.as_secs_f64();
    for d in 0..plan.domains.len() {
        let now = sim.now();
        // A compromised domain runs the malicious-pushback campaign
        // instead of its honest coordinator: every interval once the
        // attack is under way, it asks each of its escalation targets
        // to drop a flood toward the victim that does not exist. Its
        // envelopes are authentic (its own boundary identity, advancing
        // nonces) — only the trust ledgers upstream can stop it.
        if spec.malicious_pushback == Some(d) {
            // Drain any Deny replies so the inbox stays bounded, and
            // keep the meters interval-scoped.
            sim.agent_mut::<ControlChannel>(plan.domains[d].channel)
                .expect("control channel installed at build time")
                .drain_into(&mut scratch.inbox);
            scratch.drains += 1;
            drain_meters(sim, plan, d);
            if now >= spec.attack_start {
                acct.malicious_requests += 1;
                let dom = &mut plan.domains[d];
                let msg = ControlMsg::new(
                    RequesterId::new(dom.ctrl_addr),
                    acct.malicious_requests,
                    ControlVerb::Request {
                        victim,
                        aggregate_bps: MALICIOUS_CLAIM_BPS,
                        budget: depth_budget,
                    },
                );
                let mut plane = InBandPlane {
                    sim,
                    now,
                    ctrl_addr: dom.ctrl_addr,
                    gateway: dom.gateway,
                    upstream: &dom.upstream,
                    requests_out: &mut acct.requests_injected,
                };
                plane.send_upstream(msg);
            }
            continue;
        }
        // Non-participating domains have no filters, meters, or inbound
        // requests — the cascade treats them as plain forwarders.
        if !plan.domains[d].policy.participating() {
            continue;
        }
        scratch.actions.clear();
        // 1. Envelopes that arrived over the control channel.
        sim.agent_mut::<ControlChannel>(plan.domains[d].channel)
            .expect("control channel installed at build time")
            .drain_into(&mut scratch.inbox);
        scratch.drains += 1;
        // 2. Meter windows first: offered pressure drives escalation
        //    *and* attestation of inbound claims; the residual is
        //    accounting only. The local-ingress component (non-border
        //    meters) feeds the subsidence reconstruction.
        let drained = drain_meters(sim, plan, d);
        let to_bps = |bytes: u64| {
            if interval_secs > 0.0 {
                bytes as f64 / interval_secs
            } else {
                0.0
            }
        };
        let inflow_bps = to_bps(drained.inflow_bytes);
        let local_bps = to_bps(drained.local_bytes);
        // 3. Feed the state machine: inbound envelopes (vetted against
        //    the observed inflow), then the interval tick. Outbound
        //    envelopes go straight through the in-band plane; local
        //    filter effects come back as actions.
        {
            let dom = &mut plan.domains[d];
            let mut plane = InBandPlane {
                sim,
                now,
                ctrl_addr: dom.ctrl_addr,
                gateway: dom.gateway,
                upstream: &dom.upstream,
                requests_out: &mut acct.requests_injected,
            };
            for &(_at, msg) in &scratch.inbox {
                dom.coordinator
                    .on_message(msg, inflow_bps, &mut plane, &mut scratch.actions);
            }
            dom.coordinator
                .on_interval(inflow_bps, local_bps, &mut plane, &mut scratch.actions);
        }
        // 4. Apply the local actions.
        for action in scratch.actions.drain(..) {
            match action {
                PushbackAction::ActivateLocal { victim } => {
                    for &(node, _) in &plan.domains[d].atrs {
                        sim.send_control(
                            node,
                            FilterControl::PushbackStart { victim },
                            now + CONTROL_DELAY,
                        );
                        atr_nodes.push(node);
                    }
                    escalations.push((now + CONTROL_DELAY, d));
                    *max_depth = (*max_depth).max(plan.domains[d].level);
                }
                PushbackAction::DeactivateLocal => {
                    for &(node, _) in &plan.domains[d].atrs {
                        sim.send_control(node, FilterControl::PushbackStop, now + CONTROL_DELAY);
                    }
                }
            }
        }
        // 5. Lifecycle bookkeeping: latch the wave's stand-down and
        //    timestamp the first one the interval it happens.
        if d == 0
            && !acct.defense_down
            && plan.domains[0].coordinator.state() == LifecycleState::StandingDown
        {
            acct.defense_down = true;
            if acct.stood_down_at.is_none() {
                acct.stood_down_at = Some(now);
            }
        }
    }
    // After the stand-down, the teardown is complete the first interval
    // every coordinator is idle again (zero live leases anywhere).
    if acct.stood_down_at.is_some()
        && acct.teardown_done_at.is_none()
        && plan
            .domains
            .iter()
            .all(|dom| dom.coordinator.state() == LifecycleState::Idle)
    {
        acct.teardown_done_at = Some(sim.now());
    }
}

/// One interval's drained meter windows for a domain.
struct DrainedMeters {
    /// Victim-bound bytes offered at every ATR (pre-filter).
    inflow_bytes: u64,
    /// The subset of `inflow_bytes` that entered through non-border
    /// ATRs — the domain's own local-ingress component.
    local_bytes: u64,
}

/// Drains domain `d`'s pre/post meter windows, accumulates the residual
/// and returns the offered totals. Indexed loops — the meter handles
/// are Copy pairs — so draining borrows the plan and the simulator one
/// statement at a time, no clones.
fn drain_meters(sim: &mut Simulator, plan: &mut PushbackPlan, d: usize) -> DrainedMeters {
    let mut inflow_bytes = 0u64;
    let mut local_bytes = 0u64;
    for m in 0..plan.domains[d].pre_meters.len() {
        let (node, idx) = plan.domains[d].pre_meters[m];
        let meter = sim
            .filter_mut::<mafic_pushback::VictimRateMeter>(node, idx)
            .expect("meter installed at build time");
        let bytes = meter.take_window().0;
        inflow_bytes += bytes;
        if plan.domains[d].border_nodes.binary_search(&node).is_err() {
            local_bytes += bytes;
        }
    }
    let mut residual_bytes = 0u64;
    for m in 0..plan.domains[d].post_meters.len() {
        let (node, idx) = plan.domains[d].post_meters[m];
        let meter = sim
            .filter_mut::<mafic_pushback::VictimRateMeter>(node, idx)
            .expect("meter installed at build time");
        residual_bytes += meter.take_window().0;
    }
    plan.domains[d].residual_bytes += residual_bytes;
    DrainedMeters {
        inflow_bytes,
        local_bytes,
    }
}

/// How many trailing trace events the runner surfaces in
/// [`RunOutcome::trace_tail`] and embeds in the ledger.
const TRACE_TAIL_EVENTS: usize = 32;

/// Hashes one defense filter, tagged by concrete type so a policy swap
/// at the same chain slot is itself a divergence.
fn hash_filter(sim: &Simulator, node: NodeId, idx: usize, h: &mut Fnv64) {
    if let Some(f) = sim.filter::<MaficFilter>(node, idx) {
        h.write_u8(0);
        f.hash_state(h);
    } else if let Some(f) = sim.filter::<ProportionalFilter>(node, idx) {
        h.write_u8(1);
        f.hash_state(h);
    } else if let Some(f) = sim.filter::<RateLimitFilter>(node, idx) {
        h.write_u8(2);
        f.hash_state(h);
    } else {
        debug_assert!(false, "unhashed filter type at {node:?}[{idx}]");
        h.write_u8(u8::MAX);
    }
}

/// Probes every state-bearing component of the running scenario: the
/// simulator's own components, then every defense-layer component this
/// scenario owns, then the cumulative counters shared with
/// [`MetricsReport`]. The ledger records one probe per monitor
/// interval; a checkpoint embeds one as its integrity table and the
/// restorer recomputes it to verify the overlay.
fn compute_probe(
    scenario: &Scenario,
    adversary: Option<&AdversaryController>,
    inbox_drains: u64,
    sketch_recycles: u64,
) -> IntervalProbe {
    let sim = &scenario.sim;
    let mut probe = IntervalProbe::new();
    sim.hash_components(&mut probe);
    if let Some(plan) = scenario.pushback.as_ref() {
        for (d, dom) in plan.domains.iter().enumerate() {
            probe.component(&format!("dom{d}/coord"), |h| dom.coordinator.hash_state(h));
            probe.component(&format!("dom{d}/trust"), |h| {
                dom.coordinator.ledger().hash_state(h);
            });
            probe.component(&format!("dom{d}/filters"), |h| {
                h.write_usize(dom.atrs.len());
                for &(node, idx) in &dom.atrs {
                    hash_filter(sim, node, idx, h);
                }
            });
            probe.component(&format!("dom{d}/meters"), |h| {
                let meters = dom.pre_meters.iter().chain(dom.post_meters.iter());
                for &(node, idx) in meters {
                    sim.filter::<mafic_pushback::VictimRateMeter>(node, idx)
                        .expect("meter installed at build time")
                        .hash_state(h);
                }
            });
            probe.component(&format!("dom{d}/channel"), |h| {
                sim.agent::<ControlChannel>(dom.channel)
                    .expect("control channel installed at build time")
                    .hash_state(h);
            });
        }
    } else {
        probe.component("victim/filters", |h| {
            h.write_usize(scenario.droppers.len());
            for &(node, idx) in &scenario.droppers {
                hash_filter(sim, node, idx, h);
            }
        });
    }
    // Only adversarial runs carry the component: a spec without an
    // adversary produces the same probe stream (and ledger) it always
    // did.
    if let Some(adv) = adversary {
        probe.component("adversary", |h| adv.hash_state(h));
    }
    let stats = sim.stats();
    let drops = stats.drop_totals();
    for (name, value) in [
        ("drops/probing", drops[0]),
        ("drops/permanent", drops[1]),
        ("drops/illegal", drops[2]),
        ("drops/proportional", drops[3]),
        ("drops/rate-limited", drops[4]),
        ("drops/queue", drops[5]),
        ("drops/other", drops[6]),
    ] {
        probe.counter(name, value);
    }
    let mut ctrl_sent = 0u64;
    let mut denies_received = 0u64;
    let mut denies_issued = 0u64;
    let mut installs_granted = 0u64;
    if let Some(plan) = scenario.pushback.as_ref() {
        for dom in &plan.domains {
            let s = dom.coordinator.stats();
            ctrl_sent += s.requests_sent
                + s.refreshes_sent
                + s.withdraws_sent
                + s.stops_sent
                + s.reports_sent;
            denies_received += s.denies_received;
            let ledger = dom.coordinator.ledger();
            denies_issued += ledger.denies().total();
            installs_granted += ledger.granted_installs();
        }
    }
    probe.counter("ctrl/sent", ctrl_sent);
    probe.counter("ctrl/denies-received", denies_received);
    probe.counter("ctrl/denies-issued", denies_issued);
    probe.counter("ctrl/installs-granted", installs_granted);
    probe.counter("arena/live", sim.packet_arena_live() as u64);
    probe.counter("arena/peak", sim.packet_arena_peak() as u64);
    probe.counter("scratch/inbox-drains", inbox_drains);
    probe.counter("scratch/sketch-recycles", sketch_recycles);
    probe
}

/// Records one monitor interval into the run ledger.
fn record_ledger_interval(
    scenario: &Scenario,
    adversary: Option<&AdversaryController>,
    builder: &mut LedgerBuilder,
    inbox_drains: u64,
    sketch_recycles: u64,
) {
    let probe = compute_probe(scenario, adversary, inbox_drains, sketch_recycles);
    builder.record_interval(scenario.sim.now().as_nanos(), &probe);
}

/// Sums the control-plane counters of every coordinator, channel, and
/// the runner's own accounting into the per-run report.
fn collect_control_report(scenario: &Scenario, acct: &ControlAccounting) -> ControlPlaneReport {
    let Some(plan) = scenario.pushback.as_ref() else {
        return ControlPlaneReport::default();
    };
    let mut report = ControlPlaneReport {
        requests_sent: acct.requests_injected,
        ..ControlPlaneReport::default()
    };
    for dom in &plan.domains {
        let stats = dom.coordinator.stats();
        report.stops_sent += stats.stops_sent;
        report.withdraws_sent += stats.withdraws_sent;
        let ledger = dom.coordinator.ledger();
        report.installs_granted += ledger.granted_installs();
        let denies = ledger.denies();
        report.denied_bad_version += denies.bad_version;
        report.denied_untrusted += denies.untrusted;
        report.denied_replayed += denies.replayed;
        report.denied_uncorroborated += denies.uncorroborated;
        report.denied_budget += denies.budget_exhausted;
        if let Some(channel) = scenario.sim.agent::<ControlChannel>(dom.channel) {
            report.forged_dropped += channel.forged_dropped();
        }
    }
    report.stand_down_latency_s = match (acct.stood_down_at, acct.teardown_done_at) {
        (Some(down), Some(done)) => Some(done.saturating_since(down).as_secs_f64()),
        _ => None,
    };
    report
}

/// The runner's live accumulator state between monitor intervals.
///
/// [`run_scenario`] builds one internally; checkpoint restore hands one
/// back so [`resume_scenario`] can continue the loop mid-run. Opaque on
/// purpose: every field is an implementation detail of the monitor
/// loop, and the only supported operations are resuming and dropping.
#[derive(Debug)]
pub struct RunState {
    detector: VictimDetector,
    /// The *current wave's* trigger latch — cleared when the defense
    /// stands down and tears back to `Idle`, so a later flood wave
    /// re-enters detection.
    triggered_at: Option<SimTime>,
    /// The first wave's instant, kept for reporting and the β windows.
    first_triggered_at: Option<SimTime>,
    /// One-shot escalation fallback: consumed when it fires, disarmed
    /// on re-arm (its deadline is anchored to the *first* attack start,
    /// so it would fire instantly — and spuriously — the moment a later
    /// wave re-arms detection).
    fallback: Option<SimDuration>,
    atr_nodes: Vec<NodeId>,
    escalations: Vec<(SimTime, usize)>,
    max_pushback_depth: u32,
    acct: ControlAccounting,
    scratch: StepScratch,
    /// Epoch sketches land in slots reused across intervals: the first
    /// harvest populates the vector, every later one swaps buffers with
    /// the taps — no steady-state allocation in the monitor loop.
    sketches: Vec<RouterSketch>,
    sketch_recycles: u64,
    /// The closed-loop attack controller, present only when the spec
    /// carries an [`mafic_adversary::AdversarySpec`]. It observes its
    /// own sources' delivery feedback each interval and retargets the
    /// attack senders; a `None` here keeps the whole hook behind one
    /// branch per interval.
    adversary: Option<AdversaryController>,
    /// Sum of the victim tap's per-interval distinct-source cardinality
    /// readings, exported as the report's mean.
    cardinality_sum: f64,
    /// Number of cardinality readings behind the sum.
    cardinality_intervals: u64,
    ledger: Option<LedgerBuilder>,
    next_stop: SimTime,
    last_stop: SimTime,
    /// The encoded checkpoint, once captured. Restored runs arrive with
    /// it pre-filled (the bytes they were restored from), which also
    /// keeps the resumed loop from re-capturing.
    checkpoint: Option<Vec<u8>>,
}

/// Builds the loop state a fresh (pristine, time-zero) run starts from.
fn fresh_state(scenario: &Scenario) -> Result<RunState, WorkloadError> {
    let detector_config = DetectorConfig {
        // Epoch cardinalities are per monitor interval; the victim sees
        // a few hundred distinct packets per 100 ms when healthy.
        min_cardinality: 150.0,
        surge_factor: 1.6,
        baseline_weight: 0.3,
        atr_share: 0.02,
        // Train the baseline through the TCP slow-start ramp (~0.8 s).
        warmup_rounds: (0.8 / scenario.spec.monitor_interval.as_secs_f64()).ceil() as u64,
    };
    let detector = VictimDetector::new(detector_config).map_err(WorkloadError::Detection)?;
    let mut state = RunState {
        detector,
        triggered_at: None,
        first_triggered_at: None,
        fallback: scenario.spec.detection_fallback,
        atr_nodes: Vec::new(),
        escalations: Vec::new(),
        max_pushback_depth: 0,
        acct: ControlAccounting::default(),
        scratch: StepScratch::default(),
        sketches: Vec::new(),
        sketch_recycles: 0,
        // The controller observes only attacker-side state: the stub
        // index of each attack source (the zombie knows where it sits)
        // and a seed salted off the run seed so adversary randomness
        // never correlates with workload provisioning.
        adversary: scenario.spec.adversary.map(|aspec| {
            let stubs: Vec<u32> = scenario
                .flows
                .iter()
                .filter(|f| f.is_attack)
                .map(|f| u32::try_from(f.stub_index).expect("stub count fits u32"))
                .collect();
            AdversaryController::new(aspec, stubs, scenario.spec.seed ^ ADVERSARY_SEED_SALT)
        }),
        cardinality_sum: 0.0,
        cardinality_intervals: 0,
        // Off by default: when `spec.ledger` is false the hot path pays
        // one `Option` check per monitor interval and no `StateHash`
        // call ever runs — the zero-cost contract the bench gate pins.
        ledger: scenario.spec.ledger.then(|| {
            LedgerBuilder::new(LedgerHeader {
                ledger_version: 0, // the builder stamps the real version
                crate_version: env!("CARGO_PKG_VERSION").to_string(),
                seed: scenario.spec.seed,
                spec_fingerprint: fnv64(format!("{:?}", scenario.spec).as_bytes()),
                // Always 0: a run is single-threaded regardless of how
                // many engine workers run *other* specs, so ledgers
                // must be byte-identical at any `MAFIC_JOBS`. The field
                // is informational and never compared by the differ.
                workers: 0,
            })
        }),
        next_stop: SimTime::ZERO + scenario.spec.monitor_interval,
        last_stop: SimTime::ZERO,
        checkpoint: None,
    };
    if let DetectionMode::AtTime(at) = scenario.spec.detection {
        state.triggered_at = Some(at);
        state.first_triggered_at = Some(at);
        state.atr_nodes = scenario.droppers.iter().map(|&(n, _)| n).collect();
    }
    Ok(state)
}

/// Runs a scenario to completion. The scenario is borrowed, not
/// consumed, so callers can inspect post-run state (tap epochs, filter
/// tables, stats, pushback residuals) after the outcome is assembled.
///
/// # Errors
///
/// Returns a [`WorkloadError`] if the detection pipeline fails (only
/// possible with a hand-built [`DetectorConfig`]).
pub fn run_scenario(scenario: &mut Scenario) -> Result<RunOutcome, WorkloadError> {
    let mut state = fresh_state(scenario)?;
    drive(scenario, &mut state)
}

/// Continues a restored run (see [`restore_run`] / [`restore_branch`])
/// from its checkpoint instant to the scenario's end, producing the
/// same [`RunOutcome`] a straight run would.
///
/// # Errors
///
/// Returns a [`WorkloadError`] if the detection pipeline fails.
pub fn resume_scenario(
    scenario: &mut Scenario,
    mut state: RunState,
) -> Result<RunOutcome, WorkloadError> {
    drive(scenario, &mut state)
}

/// Captures the checkpoint once the monitor clock has reached the
/// requested instant (and never again — restored runs arrive with the
/// slot pre-filled). Sits at the top of the monitor loop, so the
/// capture point is always an interval boundary with the previous
/// interval fully processed: the exact state a resumed loop re-enters.
fn maybe_capture(scenario: &Scenario, state: &mut RunState) {
    let Some(at) = scenario.spec.checkpoint_at else {
        return;
    };
    if state.checkpoint.is_some() || state.last_stop < at {
        return;
    }
    state.checkpoint = Some(capture_checkpoint(scenario, state));
}

/// The monitor loop plus outcome assembly, shared by fresh and resumed
/// runs.
fn drive(scenario: &mut Scenario, state: &mut RunState) -> Result<RunOutcome, WorkloadError> {
    let auto = matches!(scenario.spec.detection, DetectionMode::Auto);
    let end = scenario.spec.end;
    let interval = scenario.spec.monitor_interval;
    while scenario.sim.now() < end {
        maybe_capture(scenario, state);
        let stop = state.next_stop.min(end);
        scenario.sim.run_until(stop);
        state.next_stop = stop + interval;
        let elapsed = stop.saturating_since(state.last_stop);
        state.last_stop = stop;
        // Harvest this epoch's sketches in Domain::routers() order —
        // every interval, triggered or not. Epochs are defined as one
        // monitor interval; skipping the drain after the trigger would
        // let them accumulate for the rest of the run, so any later
        // reader (re-detection, telemetry) would see one stale merged
        // epoch instead of an interval's worth of traffic.
        let mut victim_cardinality = 0.0_f64;
        for (i, &(node, idx)) in scenario.taps.iter().enumerate() {
            let tap = scenario
                .sim
                .filter_mut::<LogLogTap>(node, idx)
                .expect("tap installed at build time");
            // The victim router's distinct-source estimate must be read
            // before the harvest resets the epoch's address sketch.
            if node == scenario.domain.victim_router {
                victim_cardinality = tap.source_address_cardinality();
            }
            if let Some(slot) = state.sketches.get_mut(i) {
                tap.take_epoch_into(slot);
                state.sketch_recycles += 1;
            } else {
                state.sketches.push(tap.take_epoch());
            }
        }
        state.cardinality_sum += victim_cardinality;
        state.cardinality_intervals += 1;
        // The inter-domain cascade steps every interval too — meters
        // stay interval-scoped whether or not anything is defending.
        if let Some(plan) = scenario.pushback.as_mut() {
            step_pushback(
                &mut scenario.sim,
                plan,
                &scenario.spec,
                scenario.domain.victim_addr,
                state.triggered_at.is_some_and(|t| t <= stop),
                victim_cardinality,
                elapsed,
                &mut state.atr_nodes,
                &mut state.escalations,
                &mut state.max_pushback_depth,
                &mut state.acct,
                &mut state.scratch,
            );
        }
        // Re-arm after stand-down: once the victim domain has stood the
        // defense down *and* the whole cascade has torn back to `Idle`,
        // the wave is over — clear the trigger latch so a later flood
        // wave goes through detection (and `step_pushback`'s restart
        // guard) from scratch.
        if auto
            && state.triggered_at.is_some()
            && state.acct.defense_down
            && scenario
                .pushback
                .as_ref()
                .is_some_and(|plan| plan.domains[0].coordinator.state() == LifecycleState::Idle)
        {
            state.triggered_at = None;
            state.fallback = None;
            state.acct.defense_down = false;
        }
        // The closed-loop adversary steps once per interval, after the
        // cascade has applied this interval's defense actions. It reads
        // only its own sources' cumulative sent/delivered counters —
        // what each zombie measures from its own ack stream — and
        // retargets the attack senders for the next interval.
        if let Some(adv) = state.adversary.as_mut() {
            let mut feedback = adv.take_feedback_buf();
            {
                let stats = scenario.sim.stats();
                for (slot, flow) in feedback
                    .iter_mut()
                    .zip(scenario.flows.iter().filter(|f| f.is_attack))
                {
                    let (sent, delivered) = stats
                        .flow(&flow.key)
                        .map_or((0, 0), |rec| (rec.sent, rec.delivered));
                    *slot = SourceFeedback { sent, delivered };
                }
            }
            for &dir in adv.observe_interval(feedback) {
                let source = match dir {
                    AdversaryDirective::SetActive { source, .. }
                    | AdversaryDirective::SetRateScale { source, .. } => source,
                };
                let flow = scenario
                    .flows
                    .iter()
                    .filter(|f| f.is_attack)
                    .nth(source)
                    .expect("directives name sources within the attack set");
                let sender = scenario
                    .sim
                    .agent_mut::<UnresponsiveSender>(flow.agent)
                    .expect("attack sender installed at build time");
                match dir {
                    AdversaryDirective::SetActive { active, .. } => sender.set_paused(!active),
                    AdversaryDirective::SetRateScale { scale_milli, .. } => {
                        sender.set_rate_scale_milli(scale_milli);
                    }
                }
            }
        }
        // Ledger recording sits before the detection tail (which may
        // `continue` out of the iteration) so every interval is hashed
        // exactly once, at the same loop point, in every run.
        if let Some(builder) = state.ledger.as_mut() {
            record_ledger_interval(
                scenario,
                state.adversary.as_ref(),
                builder,
                state.scratch.drains,
                state.sketch_recycles,
            );
        }
        if !auto || state.triggered_at.is_some() {
            continue;
        }
        // Victim escalation fallback: if the counting pipeline has not
        // fired within the grace period, every ingress is instructed.
        if let Some(grace) = state.fallback {
            let deadline = scenario.spec.attack_start + grace;
            if scenario.sim.now() >= deadline {
                let now = scenario.sim.now();
                let at = now + CONTROL_DELAY;
                for &(node, _) in &scenario.droppers {
                    scenario.sim.send_control(
                        node,
                        FilterControl::PushbackStart {
                            victim: scenario.domain.victim_addr,
                        },
                        at,
                    );
                    state.atr_nodes.push(node);
                }
                state.triggered_at = Some(at);
                state.first_triggered_at.get_or_insert(at);
                state.fallback = None;
                continue;
            }
        }
        let matrix = TrafficMatrix::estimate(&state.sketches)
            .map_err(|e| WorkloadError::Detection(e.to_string()))?;
        if let VictimVerdict::UnderAttack(alarm) = state.detector.observe(&matrix) {
            let routers = scenario.domain.routers();
            let victim_router = routers[alarm.victim.0];
            // Only a last-hop alarm for *our* victim counts; ingress
            // routers also have egress traffic (ACKs toward hosts).
            if victim_router != scenario.domain.victim_router {
                continue;
            }
            let now = scenario.sim.now();
            let at = now + CONTROL_DELAY;
            for &(id, _contribution) in &alarm.attack_transit_routers {
                let node = routers[id.0];
                // Never instruct the victim's own router; MAFIC runs at
                // the ingress ATRs.
                if node == scenario.domain.victim_router {
                    continue;
                }
                scenario.sim.send_control(
                    node,
                    FilterControl::PushbackStart {
                        victim: scenario.domain.victim_addr,
                    },
                    at,
                );
                state.atr_nodes.push(node);
            }
            if !state.atr_nodes.is_empty() {
                state.triggered_at = Some(at);
                state.first_triggered_at.get_or_insert(at);
            }
        }
    }
    // A checkpoint requested inside the final interval lands here: the
    // loop has exited, but the capture (at `end`, trivially resumable)
    // must still happen rather than silently not.
    maybe_capture(scenario, state);

    // β windows: "before" covers only the attack-raging period between
    // attack start and the trigger; "after" sits right behind the trigger
    // (the paper reports the cut achieved within ~2×RTT, before the nice
    // flows regain their bandwidth shares).
    let trigger_anchor = state
        .first_triggered_at
        .unwrap_or(scenario.spec.attack_start);
    let raging = trigger_anchor.saturating_since(scenario.spec.attack_start);
    let windows = MeasureWindows {
        trigger_at: trigger_anchor,
        before: raging
            .max(SimDuration::from_millis(50))
            .min(SimDuration::from_millis(500)),
        settle: SimDuration::from_millis(50),
        after: SimDuration::from_millis(200),
        // Fixed-length residual window so per-depth comparisons share a
        // denominator; long enough to cover the whole cascade.
        residual: SimDuration::from_secs(2),
    };
    let policy_costs = collect_policy_costs(scenario);
    let control = collect_control_report(scenario, &state.acct);
    let stats = scenario.sim.stats();
    let mut report = MetricsReport::from_stats(stats, &windows);
    report.peak_arena_packets = scenario.sim.packet_arena_peak() as u64;
    report.scratch_inbox_drains = state.scratch.drains;
    report.scratch_sketch_recycles = state.sketch_recycles;
    report.victim_source_cardinality = if state.cardinality_intervals > 0 {
        state.cardinality_sum / state.cardinality_intervals as f64
    } else {
        0.0
    };
    let series = victim_arrival_series(stats);
    let goodput_series = victim_bandwidth_series(stats);
    let trace_tail = scenario.sim.trace_tail(TRACE_TAIL_EVENTS);
    let ledger = state
        .ledger
        .take()
        .map(|builder| builder.finish(trace_tail.clone()));
    Ok(RunOutcome {
        report,
        series,
        goodput_series,
        triggered_at: state.first_triggered_at,
        atr_nodes: sorted_unique(std::mem::take(&mut state.atr_nodes)),
        escalations: std::mem::take(&mut state.escalations),
        max_pushback_depth: state.max_pushback_depth,
        policy_costs,
        control,
        stood_down_at: state.acct.stood_down_at,
        packets_sent: stats.total_sent,
        packets_delivered: stats.total_delivered,
        ledger,
        trace_tail,
        checkpoint: state.checkpoint.take(),
    })
}

/// Writes an optional instant as a one-byte tag plus nanoseconds.
fn write_opt_time(w: &mut SnapWriter, v: Option<SimTime>) {
    match v {
        None => w.write_u8(0),
        Some(t) => {
            w.write_u8(1);
            w.write_u64(t.as_nanos());
        }
    }
}

/// Reads the counterpart of [`write_opt_time`].
fn read_opt_time(r: &mut SnapReader<'_>) -> Result<Option<SimTime>, SnapError> {
    match r.read_u8()? {
        0 => Ok(None),
        1 => Ok(Some(SimTime::from_nanos(r.read_u64()?))),
        other => Err(SnapError::Malformed(format!("bad option tag {other}"))),
    }
}

/// Re-runs the full snapshot write — probe, every section, wire
/// encode — over a scenario/state pair (e.g. one [`restore_run`] just
/// produced). This is the capture path [`ScenarioSpec::checkpoint_at`]
/// triggers mid-run, exposed so harnesses can time and size it in
/// isolation.
#[must_use]
pub fn encode_checkpoint(scenario: &Scenario, state: &RunState) -> Vec<u8> {
    capture_checkpoint(scenario, state)
}

/// Serializes the full run — simulator sections plus the runner's own
/// loop state — into the versioned snapshot format, embedding a freshly
/// computed component-hash table as the restore-time integrity gate.
fn capture_checkpoint(scenario: &Scenario, state: &RunState) -> Vec<u8> {
    let spec = &scenario.spec;
    let interval = spec.monitor_interval.as_nanos();
    let mut snapshot = Snapshot::new(SnapshotHeader {
        snap_version: SNAP_VERSION,
        crate_version: env!("CARGO_PKG_VERSION").to_string(),
        seed: spec.seed,
        spec_fingerprint: fnv64(format!("{spec:?}").as_bytes()),
        at_nanos: scenario.sim.now().as_nanos(),
        interval_index: state
            .last_stop
            .as_nanos()
            .checked_div(interval)
            .unwrap_or(0),
    });
    snapshot.component_hashes = compute_probe(
        scenario,
        state.adversary.as_ref(),
        state.scratch.drains,
        state.sketch_recycles,
    )
    .components()
    .to_vec();
    scenario.sim.snap_save_into(&mut snapshot);
    let mut w = SnapWriter::new();
    let baselines = state.detector.baselines();
    w.write_usize(baselines.len());
    for b in baselines {
        w.write_f64(*b);
    }
    w.write_u64(state.detector.rounds());
    write_opt_time(&mut w, state.triggered_at);
    write_opt_time(&mut w, state.first_triggered_at);
    match state.fallback {
        None => w.write_u8(0),
        Some(d) => {
            w.write_u8(1);
            w.write_u64(d.as_nanos());
        }
    }
    w.write_usize(state.atr_nodes.len());
    for n in &state.atr_nodes {
        w.write_u32(n.index() as u32);
    }
    w.write_usize(state.escalations.len());
    for &(at, d) in &state.escalations {
        w.write_u64(at.as_nanos());
        w.write_usize(d);
    }
    w.write_u32(state.max_pushback_depth);
    w.write_u64(state.acct.requests_injected);
    w.write_u64(state.acct.malicious_requests);
    write_opt_time(&mut w, state.acct.stood_down_at);
    write_opt_time(&mut w, state.acct.teardown_done_at);
    w.write_bool(state.acct.defense_down);
    w.write_u64(state.scratch.drains);
    w.write_u64(state.sketch_recycles);
    // Harvest slots: contents are dead at a loop-top boundary (the next
    // harvest clears each slot before swapping), but the slot *count*
    // decides push-vs-recycle, which the recycle counter observes.
    w.write_usize(state.sketches.len());
    w.write_u64(state.next_stop.as_nanos());
    w.write_u64(state.last_stop.as_nanos());
    w.write_f64(state.cardinality_sum);
    w.write_u64(state.cardinality_intervals);
    snapshot.add_section("workload/run", w.into_bytes());
    if let Some(builder) = state.ledger.as_ref() {
        let mut w = SnapWriter::new();
        builder.snap_save(&mut w);
        snapshot.add_section("workload/ledger", w.into_bytes());
    }
    if let Some(plan) = scenario.pushback.as_ref() {
        for (d, dom) in plan.domains.iter().enumerate() {
            let mut w = SnapWriter::new();
            dom.coordinator.snap_save(&mut w);
            w.write_u64(dom.residual_bytes);
            snapshot.add_section(&format!("workload/dom{d}"), w.into_bytes());
        }
    }
    if let Some(adv) = state.adversary.as_ref() {
        let mut w = SnapWriter::new();
        adv.snap_save(&mut w);
        snapshot.add_section("workload/adversary", w.into_bytes());
    }
    snapshot.encode()
}

/// Rebuilds a mid-run scenario from checkpoint bytes captured by a run
/// of the *same spec*. The returned pair plugs straight into
/// [`resume_scenario`]; the continuation is byte-identical (report,
/// series, run ledger) to the straight run that captured the snapshot.
///
/// Restore is rebuild-plus-overlay: the scenario is built fresh from
/// the spec (all build-time wiring), every snapshot section is overlaid
/// onto it, and then every component's [`StateHash`] digest is
/// recomputed and compared against the table embedded at capture time —
/// a snapshot that does not reproduce the captured state byte-for-byte
/// is rejected with the first offending component named, never loaded
/// silently.
///
/// # Errors
///
/// [`WorkloadError::Snapshot`] when the bytes fail decoding, the header
/// identity (crate version, seed, spec fingerprint) does not match, a
/// needed section is missing, or a recomputed digest mismatches;
/// ordinary build errors propagate as themselves.
pub fn restore_run(
    spec: &ScenarioSpec,
    bytes: &[u8],
) -> Result<(Scenario, RunState), WorkloadError> {
    restore_with(spec, bytes, true)
}

/// [`restore_run`] for warm-started sweeps: overlays a checkpoint onto
/// a *variant* of the capturing spec (same seed, same prefix behavior;
/// knobs that only matter after the checkpoint instant may differ), so
/// a sweep runs the shared prefix once and branches per cell. The spec
/// fingerprint check is relaxed — every other gate, including the full
/// component-digest verification, still applies, so a variant whose
/// prefix actually diverges is rejected, not silently branched.
///
/// # Errors
///
/// As [`restore_run`], minus the fingerprint equality requirement.
pub fn restore_branch(
    spec: &ScenarioSpec,
    bytes: &[u8],
) -> Result<(Scenario, RunState), WorkloadError> {
    restore_with(spec, bytes, false)
}

fn restore_with(
    spec: &ScenarioSpec,
    bytes: &[u8],
    check_fingerprint: bool,
) -> Result<(Scenario, RunState), WorkloadError> {
    let snapshot = Snapshot::decode(bytes)?;
    let header = &snapshot.header;
    let crate_version = env!("CARGO_PKG_VERSION");
    if header.crate_version != crate_version {
        return Err(SnapError::HeaderMismatch {
            field: "crate_version",
            expected: crate_version.to_string(),
            found: header.crate_version.clone(),
        }
        .into());
    }
    if header.seed != spec.seed {
        return Err(SnapError::HeaderMismatch {
            field: "seed",
            expected: spec.seed.to_string(),
            found: header.seed.to_string(),
        }
        .into());
    }
    if check_fingerprint {
        let fingerprint = fnv64(format!("{spec:?}").as_bytes());
        if header.spec_fingerprint != fingerprint {
            return Err(SnapError::HeaderMismatch {
                field: "spec_fingerprint",
                expected: format!("{fingerprint:016x}"),
                found: format!("{:016x}", header.spec_fingerprint),
            }
            .into());
        }
    }
    let mut scenario = Scenario::build(spec.clone())?;
    let mut state = fresh_state(&scenario)?;
    scenario.sim.snap_restore_from(&snapshot)?;
    let payload = snapshot
        .section("workload/run")
        .ok_or(SnapError::MissingSection {
            section: "workload/run".to_string(),
        })?;
    let mut r = SnapReader::new(payload);
    let n_baselines = r.read_usize()?;
    let mut baselines = Vec::with_capacity(n_baselines.min(1024));
    for _ in 0..n_baselines {
        baselines.push(r.read_f64()?);
    }
    let rounds = r.read_u64()?;
    state.detector.restore_parts(baselines, rounds);
    state.triggered_at = read_opt_time(&mut r)?;
    state.first_triggered_at = read_opt_time(&mut r)?;
    state.fallback = match r.read_u8()? {
        0 => None,
        1 => Some(SimDuration::from_nanos(r.read_u64()?)),
        other => return Err(SnapError::Malformed(format!("bad option tag {other}")).into()),
    };
    let n_atrs = r.read_usize()?;
    let mut atr_nodes = Vec::with_capacity(n_atrs.min(1024));
    for _ in 0..n_atrs {
        atr_nodes.push(NodeId::from_index(r.read_u32()? as usize));
    }
    state.atr_nodes = atr_nodes;
    let n_escalations = r.read_usize()?;
    let mut escalations = Vec::with_capacity(n_escalations.min(1024));
    for _ in 0..n_escalations {
        let at = SimTime::from_nanos(r.read_u64()?);
        escalations.push((at, r.read_usize()?));
    }
    state.escalations = escalations;
    state.max_pushback_depth = r.read_u32()?;
    state.acct.requests_injected = r.read_u64()?;
    state.acct.malicious_requests = r.read_u64()?;
    state.acct.stood_down_at = read_opt_time(&mut r)?;
    state.acct.teardown_done_at = read_opt_time(&mut r)?;
    state.acct.defense_down = r.read_bool()?;
    state.scratch.drains = r.read_u64()?;
    state.sketch_recycles = r.read_u64()?;
    let n_sketches = r.read_usize()?;
    if n_sketches > scenario.taps.len() {
        return Err(SnapError::Malformed(format!(
            "{n_sketches} harvest slots for {} taps",
            scenario.taps.len()
        ))
        .into());
    }
    for i in 0..n_sketches {
        let (node, idx) = scenario.taps[i];
        let precision = scenario
            .sim
            .filter::<LogLogTap>(node, idx)
            .expect("tap installed at build time")
            .sketch()
            .source_sketch()
            .precision();
        state.sketches.push(RouterSketch::new(precision));
    }
    state.next_stop = SimTime::from_nanos(r.read_u64()?);
    state.last_stop = SimTime::from_nanos(r.read_u64()?);
    state.cardinality_sum = r.read_f64()?;
    state.cardinality_intervals = r.read_u64()?;
    if !r.is_empty() {
        return Err(SnapError::Malformed(format!(
            "{} trailing bytes in workload/run",
            r.remaining()
        ))
        .into());
    }
    if let Some(builder) = state.ledger.as_mut() {
        let payload = snapshot
            .section("workload/ledger")
            .ok_or(SnapError::MissingSection {
                section: "workload/ledger".to_string(),
            })?;
        let mut r = SnapReader::new(payload);
        builder.snap_restore(&mut r)?;
        if !r.is_empty() {
            return Err(SnapError::Malformed(format!(
                "{} trailing bytes in workload/ledger",
                r.remaining()
            ))
            .into());
        }
    }
    if let Some(plan) = scenario.pushback.as_mut() {
        for (d, dom) in plan.domains.iter_mut().enumerate() {
            let label = format!("workload/dom{d}");
            let payload = snapshot
                .section(&label)
                .ok_or_else(|| SnapError::MissingSection {
                    section: label.clone(),
                })?;
            let mut r = SnapReader::new(payload);
            dom.coordinator.snap_restore(&mut r)?;
            dom.residual_bytes = r.read_u64()?;
            if !r.is_empty() {
                return Err(SnapError::Malformed(format!(
                    "{} trailing bytes in {label}",
                    r.remaining()
                ))
                .into());
            }
        }
    }
    if let Some(adv) = state.adversary.as_mut() {
        let payload = snapshot
            .section("workload/adversary")
            .ok_or(SnapError::MissingSection {
                section: "workload/adversary".to_string(),
            })?;
        let mut r = SnapReader::new(payload);
        adv.snap_restore(&mut r)?;
        if !r.is_empty() {
            return Err(SnapError::Malformed(format!(
                "{} trailing bytes in workload/adversary",
                r.remaining()
            ))
            .into());
        }
    }
    // The integrity gate: recompute every component digest over the
    // overlaid state and compare against the capture-time table. A
    // branch variant whose prefix state differs from the capturing
    // spec's fails here with the diverging component named.
    let probe = compute_probe(
        &scenario,
        state.adversary.as_ref(),
        state.scratch.drains,
        state.sketch_recycles,
    );
    let recomputed = probe.components();
    if recomputed.len() != snapshot.component_hashes.len() {
        return Err(SnapError::Malformed(format!(
            "snapshot hashes {} components, restored scenario probes {}",
            snapshot.component_hashes.len(),
            recomputed.len()
        ))
        .into());
    }
    for ((label, expected), (found_label, found)) in
        snapshot.component_hashes.iter().zip(recomputed)
    {
        if label != found_label {
            return Err(SnapError::Malformed(format!(
                "component order mismatch: snapshot has {label:?}, restore probed {found_label:?}"
            ))
            .into());
        }
        if expected != found {
            return Err(SnapError::StateMismatch {
                component: label.clone(),
                expected: *expected,
                found: *found,
            }
            .into());
        }
    }
    state.checkpoint = Some(bytes.to_vec());
    Ok((scenario, state))
}

/// Builds and runs a scenario in one call, averaging is the caller's job.
///
/// # Errors
///
/// Propagates build and run errors.
pub fn run_spec(spec: crate::spec::ScenarioSpec) -> Result<RunOutcome, WorkloadError> {
    run_scenario(&mut Scenario::build(spec)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;
    use mafic_topology::TransitTopology;

    fn quick_spec() -> ScenarioSpec {
        ScenarioSpec {
            total_flows: 12,
            n_routers: 6,
            attack_start: SimTime::from_secs_f64(0.8),
            end: SimTime::from_secs_f64(3.0),
            ..ScenarioSpec::default()
        }
    }

    fn quick_multi_spec(depth: u32) -> ScenarioSpec {
        ScenarioSpec {
            total_flows: 12,
            n_routers: 6,
            domains: 3,
            transit_topology: TransitTopology::Chain { depth: 1 },
            pushback_depth: depth,
            attack_start: SimTime::from_secs_f64(0.8),
            end: SimTime::from_secs_f64(3.5),
            ..ScenarioSpec::default()
        }
    }

    #[test]
    fn auto_detection_triggers_and_cuts_attack() {
        let outcome = run_spec(quick_spec()).unwrap();
        assert!(outcome.defense_engaged(), "detector must fire: {outcome:?}");
        let t = outcome.triggered_at.unwrap();
        assert!(
            t > quick_spec().attack_start,
            "trigger {t} before attack start"
        );
        assert!(
            t < quick_spec().attack_start + SimDuration::from_millis(600),
            "detection too slow: {t}"
        );
        assert!(!outcome.atr_nodes.is_empty());
        // The defense must drop the bulk of the attack.
        assert!(
            outcome.report.accuracy_pct > 90.0,
            "accuracy {:.2}%",
            outcome.report.accuracy_pct
        );
    }

    #[test]
    fn atr_nodes_are_sorted_and_unique() {
        let outcome = run_spec(quick_spec()).unwrap();
        let nodes = &outcome.atr_nodes;
        assert!(!nodes.is_empty());
        assert!(
            nodes.windows(2).all(|w| w[0] < w[1]),
            "atr_nodes must be strictly ascending: {nodes:?}"
        );
    }

    #[test]
    fn sorted_unique_collapses_duplicates_across_paths() {
        // Regression: the fallback and detector paths (and lease-lapse
        // re-activations in the cascade) may both append a router.
        let raw = vec![
            NodeId::from_index(5),
            NodeId::from_index(2),
            NodeId::from_index(5),
            NodeId::from_index(2),
            NodeId::from_index(9),
        ];
        assert_eq!(
            sorted_unique(raw),
            vec![
                NodeId::from_index(2),
                NodeId::from_index(5),
                NodeId::from_index(9)
            ]
        );
    }

    #[test]
    fn fixed_time_detection_runs_without_monitor() {
        let spec = ScenarioSpec {
            detection: DetectionMode::AtTime(SimTime::from_secs_f64(1.0)),
            ..quick_spec()
        };
        let outcome = run_spec(spec).unwrap();
        assert_eq!(outcome.triggered_at, Some(SimTime::from_secs_f64(1.0)));
        assert!(outcome.report.accuracy_pct > 90.0);
    }

    #[test]
    fn detection_off_never_drops() {
        let spec = ScenarioSpec {
            detection: DetectionMode::Off,
            ..quick_spec()
        };
        let outcome = run_spec(spec).unwrap();
        assert!(!outcome.defense_engaged());
        assert_eq!(outcome.report.attack_dropped, 0);
        assert_eq!(outcome.report.attack_seen, 0, "no ATR accounting when idle");
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_spec(quick_spec()).unwrap();
        let b = run_spec(quick_spec()).unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.triggered_at, b.triggered_at);
        assert_eq!(a.packets_sent, b.packets_sent);
    }

    #[test]
    fn taps_stay_epoch_scoped_after_trigger() {
        let mut scenario = Scenario::build(quick_spec()).unwrap();
        let outcome = run_scenario(&mut scenario).unwrap();
        assert!(outcome.defense_engaged(), "precondition: defense fired");
        // The monitor drains the taps every interval, triggered or not.
        // The final drain happens at `end`, so a post-run reader sees an
        // interval-scoped (here: empty) epoch — not every packet since
        // the trigger merged into one stale epoch.
        let taps = scenario.taps.clone();
        for (node, idx) in taps {
            let tap = scenario
                .sim
                .filter_mut::<LogLogTap>(node, idx)
                .expect("tap installed at build time");
            let epoch = tap.take_epoch();
            assert_eq!(epoch.source_cardinality(), 0.0, "stale sources at {node:?}");
            assert_eq!(
                epoch.destination_cardinality(),
                0.0,
                "stale destinations at {node:?}"
            );
        }
    }

    #[test]
    fn legit_flows_survive_the_defense() {
        let outcome = run_spec(quick_spec()).unwrap();
        // The whole point of MAFIC: legitimate flows keep most of their
        // packets.
        assert!(
            outcome.report.legit_drop_pct < 20.0,
            "legit drop rate {:.2}%",
            outcome.report.legit_drop_pct
        );
        assert!(
            outcome.report.flows.legit_condemned <= outcome.report.flows.legit_flows / 4,
            "too many legit flows condemned: {:?}",
            outcome.report.flows
        );
    }

    #[test]
    fn depth_zero_multi_domain_never_escalates() {
        let outcome = run_spec(quick_multi_spec(0)).unwrap();
        assert!(outcome.defense_engaged());
        assert_eq!(outcome.max_pushback_depth, 0);
        assert!(
            outcome.escalations.is_empty(),
            "depth 0 must stay victim-domain-only: {:?}",
            outcome.escalations
        );
    }

    #[test]
    fn cascade_escalates_up_to_the_budget() {
        let outcome = run_spec(quick_multi_spec(2)).unwrap();
        assert!(outcome.defense_engaged());
        assert!(
            outcome.max_pushback_depth >= 1,
            "sustained flood must escalate: {:?}",
            outcome.escalations
        );
        assert!(outcome.max_pushback_depth <= 2, "budget caps the cascade");
        // Escalations activate in path order, after the local trigger.
        let trigger = outcome.triggered_at.unwrap();
        for &(at, _) in &outcome.escalations {
            assert!(at > trigger);
        }
    }

    #[test]
    fn charge_skip_cost_prices_levels_and_enforces_budget() {
        let victim = Addr::new(7);
        let requester = RequesterId::new(Addr::new(99));
        let envelope = |verb| ControlMsg::new(requester, 3, verb);
        let req = envelope(ControlVerb::Request {
            victim,
            aggregate_bps: 1000,
            budget: 2,
        });
        // Direct neighbor: unchanged (identity and nonce included).
        assert_eq!(charge_skip_cost(req, 1), Some(req));
        // Two levels away: one extra hop charged; the rest of the
        // envelope survives untouched.
        assert_eq!(
            charge_skip_cost(req, 2),
            Some(envelope(ControlVerb::Request {
                victim,
                aggregate_bps: 1000,
                budget: 1,
            }))
        );
        // Four levels away: budget 2 cannot cover 3 extra hops.
        assert_eq!(charge_skip_cost(req, 4), None);
        // Refresh follows the same pricing.
        let refresh = envelope(ControlVerb::Refresh { victim, budget: 1 });
        assert_eq!(
            charge_skip_cost(refresh, 2),
            Some(envelope(ControlVerb::Refresh { victim, budget: 0 }))
        );
        assert_eq!(charge_skip_cost(refresh, 3), None);
        // Withdraw, Stop, and Deny always forward.
        let withdraw = envelope(ControlVerb::Withdraw { victim });
        assert_eq!(charge_skip_cost(withdraw, 5), Some(withdraw));
        let stop = envelope(ControlVerb::Stop { victim });
        assert_eq!(charge_skip_cost(stop, 5), Some(stop));
        let deny = envelope(ControlVerb::Deny {
            victim,
            reason: mafic_netsim::DenyReason::BudgetExhausted,
        });
        assert_eq!(charge_skip_cost(deny, 5), Some(deny));
    }

    #[test]
    fn policy_costs_cover_every_deployed_policy() {
        use mafic::DefensePolicy;
        let spec = crate::spec::ScenarioSpec {
            transit_policy: Some(DefensePolicy::AggregateRateLimit {
                limit_bytes_per_sec: 250_000.0,
            }),
            ..quick_multi_spec(2)
        };
        let outcome = run_spec(spec).unwrap();
        assert!(outcome.defense_engaged());
        let labels: Vec<&str> = outcome
            .policy_costs
            .iter()
            .map(|c| c.policy.as_str())
            .collect();
        assert_eq!(labels, vec!["mafic", "rate-limit"], "sorted by label");
        let mafic_row = &outcome.policy_costs[0];
        assert!(mafic_row.domains >= 1);
        assert!(mafic_row.filters > 0);
        assert!(mafic_row.table_bytes > 0, "MAFIC keeps per-flow tables");
        assert!(mafic_row.timer_events > 0, "probation timers were armed");
        let rl_row = &outcome.policy_costs[1];
        assert_eq!(rl_row.timer_events, 0, "the bucket keeps no timers");
        let per_bucket = mafic::RateLimitFilter::new(1.0).approx_state_bytes() as u64;
        assert_eq!(rl_row.table_bytes, per_bucket * rl_row.filters as u64);
    }

    #[test]
    fn single_domain_outcome_reports_costs_too() {
        let outcome = run_spec(quick_spec()).unwrap();
        assert_eq!(outcome.policy_costs.len(), 1);
        assert_eq!(outcome.policy_costs[0].policy, "mafic");
        assert_eq!(outcome.policy_costs[0].domains, 1);
    }

    #[test]
    fn zero_participation_keeps_the_defense_at_the_victim_domain() {
        let spec = crate::spec::ScenarioSpec {
            participation_fraction: 0.0,
            ..quick_multi_spec(3)
        };
        let outcome = run_spec(spec).unwrap();
        assert!(outcome.defense_engaged());
        assert_eq!(
            outcome.max_pushback_depth, 0,
            "nobody upstream participates: {:?}",
            outcome.escalations
        );
        // Only the victim domain's boundary ever activates.
        assert!(outcome.escalations.iter().all(|&(_, d)| d == 0));
    }

    #[test]
    fn cross_traffic_counts_as_legitimate_bystander_traffic() {
        let without = run_spec(quick_multi_spec(1)).unwrap();
        let spec = ScenarioSpec {
            cross_traffic_bps: 50_000.0,
            ..quick_multi_spec(1)
        };
        let mut scenario = crate::scenario::Scenario::build(spec).unwrap();
        let with = run_scenario(&mut scenario).unwrap();
        // The background flows are declared legitimate, so the
        // collateral denominator grows and their losses (if any) are
        // visible to the metrics.
        assert!(
            with.report.legit_data_sent > without.report.legit_data_sent,
            "cross traffic must add legitimate data: {} vs {}",
            with.report.legit_data_sent,
            without.report.legit_data_sent
        );
        // The flows actually moved packets across the transit tier.
        let key = scenario.cross_traffic[0];
        let record = scenario
            .sim
            .stats()
            .flow(&key)
            .expect("cross flow is declared");
        assert!(!record.is_attack);
        assert!(record.sent > 0, "cross sender must emit packets");
    }

    #[test]
    fn checkpoint_restore_resumes_byte_identically() {
        let spec = ScenarioSpec {
            checkpoint_at: Some(SimTime::from_secs_f64(1.2)),
            ledger: true,
            ..quick_spec()
        };
        let straight = run_spec(spec.clone()).unwrap();
        let bytes = straight.checkpoint.clone().expect("checkpoint captured");
        let (mut scenario, state) = restore_run(&spec, &bytes).unwrap();
        let resumed = resume_scenario(&mut scenario, state).unwrap();
        assert_eq!(resumed.report, straight.report);
        assert_eq!(resumed.series, straight.series);
        assert_eq!(resumed.goodput_series, straight.goodput_series);
        assert_eq!(resumed.ledger, straight.ledger);
        assert_eq!(resumed.triggered_at, straight.triggered_at);
        assert_eq!(resumed.atr_nodes, straight.atr_nodes);
        assert_eq!(resumed.packets_sent, straight.packets_sent);
        assert_eq!(
            resumed.checkpoint.as_deref(),
            Some(bytes.as_slice()),
            "a resumed run carries the snapshot it was restored from"
        );
    }

    #[test]
    fn multi_domain_checkpoint_covers_the_cascade() {
        let spec = ScenarioSpec {
            checkpoint_at: Some(SimTime::from_secs_f64(1.5)),
            ledger: true,
            ..quick_multi_spec(2)
        };
        let straight = run_spec(spec.clone()).unwrap();
        let bytes = straight.checkpoint.clone().expect("checkpoint captured");
        let (mut scenario, state) = restore_run(&spec, &bytes).unwrap();
        let resumed = resume_scenario(&mut scenario, state).unwrap();
        assert_eq!(resumed.report, straight.report);
        assert_eq!(resumed.escalations, straight.escalations);
        assert_eq!(resumed.control, straight.control);
        assert_eq!(resumed.stood_down_at, straight.stood_down_at);
        assert_eq!(resumed.ledger, straight.ledger);
    }

    #[test]
    fn restore_rejects_the_wrong_seed() {
        let spec = ScenarioSpec {
            checkpoint_at: Some(SimTime::from_secs_f64(1.0)),
            ..quick_spec()
        };
        let bytes = run_spec(spec.clone()).unwrap().checkpoint.unwrap();
        let other = ScenarioSpec { seed: 2, ..spec };
        match restore_run(&other, &bytes) {
            Err(WorkloadError::Snapshot(mafic_obs::SnapError::HeaderMismatch {
                field, ..
            })) => assert_eq!(field, "seed"),
            other => panic!("expected a seed header mismatch, got {other:?}"),
        }
    }

    #[test]
    fn multi_domain_runs_are_deterministic() {
        let a = run_spec(quick_multi_spec(2)).unwrap();
        let b = run_spec(quick_multi_spec(2)).unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.escalations, b.escalations);
        assert_eq!(a.packets_sent, b.packets_sent);
    }
}
