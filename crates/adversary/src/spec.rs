//! Adversary configuration — the attacker-side parameter surface.

/// Which closed-loop strategy drives the controller's retargeting.
///
/// All variants honour the equal-budget contract (see the crate docs):
/// pausing a cohort scales the survivors up so the aggregate nominal
/// rate never exceeds the open-loop baseline's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StrategyKind {
    /// Churn the botnet's active source cohort faster than the
    /// defense's lease expiry: a paused cohort stops feeding the
    /// upstream meters, the defense stands down and flushes, and the
    /// cohort returns to a clean slate before re-detection completes.
    ///
    /// When `period_intervals` is *not* shorter than the published
    /// lease ([`AdversarySpec::lease_intervals`]), rotation cannot
    /// outrun the soft state and the strategy's own best response is to
    /// not rotate at all — it emits no directives and the run is
    /// behaviorally identical to the open-loop baseline.
    SourceRotation {
        /// Monitor intervals between cohort switches.
        period_intervals: u32,
        /// Fraction of sources active at once, in `(0, 1]`; the cohort
        /// count is `round(1 / active_fraction)`.
        active_fraction: f64,
    },
    /// Hold the aggregate just under the attestation floor: on
    /// observing engagement-level loss, step every source's rate down
    /// toward the floor so upstream boundary meters never corroborate
    /// a flood-scale claim; step back up once the loss subsides.
    AttestationShaping {
        /// Per-interval rate step, in thousandths of the nominal rate.
        step_milli: u32,
        /// Lowest rate the shaping will hold, in thousandths.
        floor_milli: u32,
    },
    /// Period-lock pulses to the coordinator's K-interval hysteresis:
    /// transmit boosted for `K - 1` intervals, then go dark for one —
    /// the dip resets the escalation counter
    /// ([`AdversarySpec::trigger_intervals`] consecutive hot intervals
    /// are required), so upstream escalation never fires.
    PulseTuning {
        /// Active-phase rate in thousandths of nominal. `0` derives the
        /// equal-budget boost `1000 × K / (K - 1)` from the published
        /// hysteresis window.
        boost_milli: u32,
    },
    /// Rotate the whole flood across sibling stub domains: each period
    /// only one stub's sources transmit (scaled to the full budget), so
    /// every upstream trust ledger keeps paying fresh install costs for
    /// a different requester — per-target install budgets dilute.
    CarpetBombing {
        /// Monitor intervals between stub switches.
        period_intervals: u32,
    },
}

impl StrategyKind {
    /// Stable display label (figure legends, ledger components).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::SourceRotation { .. } => "rotation",
            StrategyKind::AttestationShaping { .. } => "attestation",
            StrategyKind::PulseTuning { .. } => "pulse",
            StrategyKind::CarpetBombing { .. } => "carpet",
        }
    }

    /// Snapshot discriminant — a restored controller must carry the
    /// same strategy shape it was captured with.
    #[must_use]
    pub(crate) fn tag(self) -> u8 {
        match self {
            StrategyKind::SourceRotation { .. } => 0,
            StrategyKind::AttestationShaping { .. } => 1,
            StrategyKind::PulseTuning { .. } => 2,
            StrategyKind::CarpetBombing { .. } => 3,
        }
    }
}

/// Full description of one adaptive adversary.
///
/// The protocol constants (`lease_intervals`, `trigger_intervals`) are
/// *public* defense parameters — the published defaults of the pushback
/// configuration — not leaked runtime state; see the crate-level
/// observability-boundary discussion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdversarySpec {
    /// The closed-loop strategy to run.
    pub strategy: StrategyKind,
    /// Published lease length of the defense's soft state, in monitor
    /// intervals (the coordinator's `hold_intervals` default).
    pub lease_intervals: u32,
    /// Published escalation hysteresis window, in monitor intervals
    /// (the coordinator's `trigger_intervals` default).
    pub trigger_intervals: u32,
    /// Aggregate loss rate above which the attacker considers the
    /// defense engaged, in `(0, 1]`.
    pub engage_loss: f64,
}

impl Default for AdversarySpec {
    fn default() -> Self {
        AdversarySpec {
            strategy: StrategyKind::SourceRotation {
                period_intervals: 4,
                active_fraction: 0.5,
            },
            // Matches PushbackConfig::default(): hold_intervals = 12,
            // trigger_intervals = 4. Published defaults, not secrets.
            lease_intervals: 12,
            trigger_intervals: 4,
            engage_loss: 0.5,
        }
    }
}

impl AdversarySpec {
    /// An [`AdversarySpec`] running `strategy` with the published
    /// protocol defaults.
    #[must_use]
    pub fn with_strategy(strategy: StrategyKind) -> Self {
        AdversarySpec {
            strategy,
            ..AdversarySpec::default()
        }
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.lease_intervals == 0 {
            return Err("lease_intervals must be >= 1".into());
        }
        if self.trigger_intervals < 2 {
            return Err(format!(
                "trigger_intervals must be >= 2 (a pulse needs one dark interval), got {}",
                self.trigger_intervals
            ));
        }
        if !(self.engage_loss > 0.0 && self.engage_loss <= 1.0) {
            return Err(format!(
                "engage_loss must be in (0, 1], got {}",
                self.engage_loss
            ));
        }
        match self.strategy {
            StrategyKind::SourceRotation {
                period_intervals,
                active_fraction,
            } => {
                if period_intervals == 0 {
                    return Err("SourceRotation period_intervals must be >= 1".into());
                }
                if !(active_fraction > 0.0 && active_fraction <= 1.0) {
                    return Err(format!(
                        "SourceRotation active_fraction must be in (0, 1], got {active_fraction}"
                    ));
                }
            }
            StrategyKind::AttestationShaping {
                step_milli,
                floor_milli,
            } => {
                if step_milli == 0 {
                    return Err("AttestationShaping step_milli must be >= 1".into());
                }
                if floor_milli == 0 || floor_milli > 1000 {
                    return Err(format!(
                        "AttestationShaping floor_milli must be in [1, 1000], got {floor_milli}"
                    ));
                }
            }
            StrategyKind::PulseTuning { boost_milli } => {
                if boost_milli != 0 && boost_milli < 1000 {
                    return Err(format!(
                        "PulseTuning boost_milli must be 0 (derive) or >= 1000, got {boost_milli}"
                    ));
                }
            }
            StrategyKind::CarpetBombing { period_intervals } => {
                if period_intervals == 0 {
                    return Err("CarpetBombing period_intervals must be >= 1".into());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_and_match_published_constants() {
        let spec = AdversarySpec::default();
        assert!(spec.validate().is_ok());
        assert_eq!(spec.lease_intervals, 12);
        assert_eq!(spec.trigger_intervals, 4);
    }

    #[test]
    fn labels_and_tags_are_distinct() {
        let kinds = [
            StrategyKind::SourceRotation {
                period_intervals: 4,
                active_fraction: 0.5,
            },
            StrategyKind::AttestationShaping {
                step_milli: 200,
                floor_milli: 200,
            },
            StrategyKind::PulseTuning { boost_milli: 0 },
            StrategyKind::CarpetBombing {
                period_intervals: 4,
            },
        ];
        for (i, a) in kinds.iter().enumerate() {
            for (j, b) in kinds.iter().enumerate() {
                if i != j {
                    assert_ne!(a.label(), b.label());
                    assert_ne!(a.tag(), b.tag());
                }
            }
        }
    }

    #[test]
    fn validation_catches_bad_specs() {
        for (label, bad) in [
            (
                "zero lease",
                AdversarySpec {
                    lease_intervals: 0,
                    ..AdversarySpec::default()
                },
            ),
            (
                "degenerate hysteresis",
                AdversarySpec {
                    trigger_intervals: 1,
                    ..AdversarySpec::default()
                },
            ),
            (
                "engage_loss out of range",
                AdversarySpec {
                    engage_loss: 0.0,
                    ..AdversarySpec::default()
                },
            ),
            (
                "zero rotation period",
                AdversarySpec::with_strategy(StrategyKind::SourceRotation {
                    period_intervals: 0,
                    active_fraction: 0.5,
                }),
            ),
            (
                "rotation fraction above 1",
                AdversarySpec::with_strategy(StrategyKind::SourceRotation {
                    period_intervals: 4,
                    active_fraction: 1.5,
                }),
            ),
            (
                "zero shaping step",
                AdversarySpec::with_strategy(StrategyKind::AttestationShaping {
                    step_milli: 0,
                    floor_milli: 200,
                }),
            ),
            (
                "shaping floor above nominal",
                AdversarySpec::with_strategy(StrategyKind::AttestationShaping {
                    step_milli: 200,
                    floor_milli: 1500,
                }),
            ),
            (
                "pulse boost below nominal",
                AdversarySpec::with_strategy(StrategyKind::PulseTuning { boost_milli: 500 }),
            ),
            (
                "zero carpet period",
                AdversarySpec::with_strategy(StrategyKind::CarpetBombing {
                    period_intervals: 0,
                }),
            ),
        ] {
            assert!(bad.validate().is_err(), "{label} must be rejected");
        }
    }
}
