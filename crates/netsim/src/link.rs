//! Simplex links with serialization delay, propagation delay, and a
//! drop-tail queue.
//!
//! A link transmits one packet at a time at `bandwidth_bps`; packets that
//! arrive while the transmitter is busy wait in a bounded FIFO queue and
//! are dropped (drop-tail) when the queue is full — the same model NS-2's
//! `SimplexLink` + `DropTail` queue combination provides.

use crate::arena::PacketRef;
use crate::ids::NodeId;
use crate::time::{SimDuration, SimTime};
use mafic_obs::{SnapError, SnapReader, SnapWriter};
use std::collections::VecDeque;

/// Static parameters of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Transmission rate in bits per second.
    pub bandwidth_bps: f64,
    /// Propagation delay.
    pub delay: SimDuration,
    /// Maximum number of queued packets (excluding the one on the wire).
    pub queue_capacity: usize,
}

impl LinkSpec {
    /// A convenience constructor.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is not strictly positive and finite.
    #[must_use]
    pub fn new(bandwidth_bps: f64, delay: SimDuration, queue_capacity: usize) -> Self {
        assert!(
            bandwidth_bps.is_finite() && bandwidth_bps > 0.0,
            "bandwidth must be positive, got {bandwidth_bps}"
        );
        LinkSpec {
            bandwidth_bps,
            delay,
            queue_capacity,
        }
    }

    /// Time to serialize `size_bytes` onto the wire.
    #[must_use]
    pub fn tx_time(&self, size_bytes: u32) -> SimDuration {
        SimDuration::from_secs_f64(f64::from(size_bytes) * 8.0 / self.bandwidth_bps)
    }
}

impl Default for LinkSpec {
    /// 10 Mbit/s, 10 ms delay, 64-packet queue.
    fn default() -> Self {
        LinkSpec::new(10e6, SimDuration::from_millis(10), 64)
    }
}

/// Outcome of offering a packet to a link.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum EnqueueOutcome {
    /// Accepted: the packet reaches the far end at the contained instant
    /// (schedule a [`crate::event::EventKind::LinkDeliver`] then).
    Accepted(SimTime),
    /// Queue full — packet dropped (drop-tail).
    Dropped(PacketRef),
}

/// Runtime state of a simplex link.
///
/// The transmitter is modeled *analytically*: because serialization is
/// strictly FIFO and its duration is a pure function of packet size, the
/// instant a packet finishes serializing — `max(now, busy_until) +
/// tx_time` — is fully determined at enqueue time. So the link keeps a
/// single `busy_until` watermark instead of an in-flight slot plus a
/// transmit queue, and no per-packet "tx done" event ever enters the
/// scheduler: the only event a traversal costs is the delivery at the
/// far end.
///
/// Packets are held by arena handle only. The delivery FIFO is two
/// parallel arrays (due instants and handles, SoA) drained in one pass
/// per [`crate::event::EventKind::LinkDeliver`]; `starts` records the
/// serialization-start instants of packets that may still be waiting,
/// which is exactly the state drop-tail admission needs (a packet
/// occupies the queue while `now < start`).
#[derive(Debug)]
pub(crate) struct Link {
    pub(crate) from: NodeId,
    pub(crate) to: NodeId,
    pub(crate) spec: LinkSpec,
    /// When the transmitter finishes everything accepted so far.
    busy_until: SimTime,
    /// Serialization-start instants of accepted-but-possibly-waiting
    /// packets, non-decreasing. Entries with `start <= now` have left
    /// the queue for the wire and are pruned lazily on enqueue.
    starts: VecDeque<SimTime>,
    /// Memo of the most recent serialization-time computation. Traffic is
    /// dominated by a handful of fixed packet sizes, so this skips the
    /// f64 divide on nearly every transmission; a hit is byte-identical
    /// to recomputing because [`LinkSpec::tx_time`] is a pure function of
    /// `(size, spec)` and `spec` is immutable after construction.
    last_tx: Option<(u32, SimDuration)>,
    /// Propagation-delay FIFO: completion instants (non-decreasing —
    /// serialization finishes in order and delay is constant) ...
    pending_due: VecDeque<SimTime>,
    /// ... and the matching packet handles.
    pending_refs: VecDeque<PacketRef>,
    /// Counters for observability.
    pub(crate) enqueued: u64,
    pub(crate) dropped_queue_full: u64,
}

impl Link {
    pub(crate) fn new(from: NodeId, to: NodeId, spec: LinkSpec) -> Self {
        Link {
            from,
            to,
            spec,
            busy_until: SimTime::ZERO,
            starts: VecDeque::new(),
            last_tx: None,
            pending_due: VecDeque::new(),
            pending_refs: VecDeque::new(),
            enqueued: 0,
            dropped_queue_full: 0,
        }
    }

    /// Offers a packet of `size_bytes` to the link at time `now`.
    ///
    /// Admission is drop-tail over the *waiting* packets: those whose
    /// serialization has not started by `now`. On acceptance the packet's
    /// whole link traversal is resolved immediately — serialization slot
    /// reserved, delivery instant computed and pushed onto the FIFO.
    ///
    /// Tie rule: a serialization that finishes exactly at `now` still
    /// occupies the transmitter and its queue slot for this admission
    /// check. The event-per-transmission model behaved the same way in
    /// the common topology — the arrival's delivery event was scheduled
    /// a propagation delay before `now`, the "tx done" event only a
    /// (shorter) serialization time before, so at equal instants the
    /// arrival was processed first and saw the slot still taken.
    pub(crate) fn enqueue(
        &mut self,
        packet: PacketRef,
        size_bytes: u32,
        now: SimTime,
    ) -> EnqueueOutcome {
        while self.starts.front().is_some_and(|&s| s < now) {
            self.starts.pop_front();
        }
        let busy = self.busy_until > now || (self.busy_until == now && self.enqueued > 0);
        let start = if busy {
            if self.starts.len() >= self.spec.queue_capacity {
                self.dropped_queue_full += 1;
                return EnqueueOutcome::Dropped(packet);
            }
            self.starts.push_back(self.busy_until);
            self.busy_until
        } else {
            now
        };
        let finish = start + self.tx_time_cached(size_bytes);
        self.busy_until = finish;
        self.enqueued += 1;
        let due = finish + self.spec.delay;
        self.push_delivery(due, packet);
        EnqueueOutcome::Accepted(due)
    }

    /// [`LinkSpec::tx_time`] through the single-entry size memo.
    fn tx_time_cached(&mut self, size_bytes: u32) -> SimDuration {
        if let Some((memo_size, tx)) = self.last_tx {
            if memo_size == size_bytes {
                return tx;
            }
        }
        let tx = self.spec.tx_time(size_bytes);
        self.last_tx = Some((size_bytes, tx));
        tx
    }

    /// Appends a packet to the delivery FIFO, due to arrive at the far
    /// end at `due`.
    pub(crate) fn push_delivery(&mut self, due: SimTime, packet: PacketRef) {
        debug_assert!(
            self.pending_due.back().is_none_or(|&last| due >= last),
            "delivery dues must be non-decreasing"
        );
        self.pending_due.push_back(due);
        self.pending_refs.push_back(packet);
    }

    /// Pops the next delivery if it is due at or before `now`.
    pub(crate) fn pop_due(&mut self, now: SimTime) -> Option<PacketRef> {
        if *self.pending_due.front()? > now {
            return None;
        }
        self.pending_due.pop_front();
        self.pending_refs.pop_front()
    }

    /// Queue occupancy at `now` (excluding the packet on the wire):
    /// accepted packets whose serialization has not yet started.
    pub(crate) fn queue_len(&self, now: SimTime) -> usize {
        self.starts.iter().filter(|&&s| s > now).count()
    }

    /// True if the transmitter is serializing a packet at `now`.
    pub(crate) fn is_busy(&self, now: SimTime) -> bool {
        self.busy_until > now
    }

    /// Folds the link's runtime state into `h` for the run ledger.
    ///
    /// The `last_tx` serialization-time memo is deliberately skipped: it
    /// is a pure cache over the immutable spec, recomputable from hashed
    /// state, and whether it is warm depends only on call history that
    /// the hashed queues already pin down.
    pub(crate) fn hash_state(&self, h: &mut mafic_obs::Fnv64) {
        h.write_u32(self.from.0);
        h.write_u32(self.to.0);
        h.write_f64(self.spec.bandwidth_bps);
        h.write_u64(self.spec.delay.as_nanos());
        h.write_usize(self.spec.queue_capacity);
        h.write_u64(self.busy_until.as_nanos());
        h.write_usize(self.starts.len());
        for s in &self.starts {
            h.write_u64(s.as_nanos());
        }
        h.write_usize(self.pending_due.len());
        for d in &self.pending_due {
            h.write_u64(d.as_nanos());
        }
        for r in &self.pending_refs {
            h.write_u32(r.0);
        }
        h.write_u64(self.enqueued);
        h.write_u64(self.dropped_queue_full);
    }

    /// Serializes the link's *mutable* runtime state for a checkpoint.
    /// Endpoints and spec are build-time configuration (rebuilt from the
    /// scenario spec) and are not saved; the `last_tx` memo is a pure
    /// cache and is reset on restore.
    pub(crate) fn snap_save(&self, w: &mut SnapWriter) {
        w.write_u64(self.busy_until.as_nanos());
        w.write_usize(self.starts.len());
        for s in &self.starts {
            w.write_u64(s.as_nanos());
        }
        w.write_usize(self.pending_due.len());
        for d in &self.pending_due {
            w.write_u64(d.as_nanos());
        }
        for r in &self.pending_refs {
            w.write_u32(r.0);
        }
        w.write_u64(self.enqueued);
        w.write_u64(self.dropped_queue_full);
    }

    /// Overlays checkpointed runtime state onto a freshly built link.
    pub(crate) fn snap_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.busy_until = SimTime::from_nanos(r.read_u64()?);
        let n_starts = r.read_usize()?;
        self.starts.clear();
        for _ in 0..n_starts {
            self.starts.push_back(SimTime::from_nanos(r.read_u64()?));
        }
        let n_pending = r.read_usize()?;
        self.pending_due.clear();
        self.pending_refs.clear();
        for _ in 0..n_pending {
            self.pending_due
                .push_back(SimTime::from_nanos(r.read_u64()?));
        }
        for _ in 0..n_pending {
            self.pending_refs.push_back(PacketRef(r.read_u32()?));
        }
        self.enqueued = r.read_u64()?;
        self.dropped_queue_full = r.read_u64()?;
        self.last_tx = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(cap: usize) -> Link {
        Link::new(
            NodeId(0),
            NodeId(1),
            LinkSpec::new(8e6, SimDuration::from_millis(5), cap),
        )
    }

    #[test]
    fn tx_time_matches_bandwidth() {
        let spec = LinkSpec::new(8e6, SimDuration::ZERO, 1);
        // 1000 bytes at 8 Mbit/s = 1 ms.
        assert_eq!(spec.tx_time(1000), SimDuration::from_millis(1));
    }

    #[test]
    fn idle_link_starts_transmission() {
        let mut l = link(4);
        // 1000 bytes at 8 Mbit/s = 1 ms serialization + 5 ms propagation.
        match l.enqueue(PacketRef(1), 1000, SimTime::ZERO) {
            EnqueueOutcome::Accepted(due) => {
                assert_eq!(due, SimTime::ZERO + SimDuration::from_millis(6));
            }
            other => panic!("expected Accepted, got {other:?}"),
        }
        assert!(l.is_busy(SimTime::ZERO));
        assert!(!l.is_busy(SimTime::ZERO + SimDuration::from_millis(1)));
    }

    #[test]
    fn busy_link_queues_then_drops() {
        let mut l = link(2);
        let _ = l.enqueue(PacketRef(1), 1000, SimTime::ZERO);
        match l.enqueue(PacketRef(2), 1000, SimTime::ZERO) {
            EnqueueOutcome::Accepted(due) => {
                assert_eq!(due, SimTime::ZERO + SimDuration::from_millis(7));
            }
            other => panic!("expected Accepted, got {other:?}"),
        }
        match l.enqueue(PacketRef(3), 1000, SimTime::ZERO) {
            EnqueueOutcome::Accepted(due) => {
                assert_eq!(due, SimTime::ZERO + SimDuration::from_millis(8));
            }
            other => panic!("expected Accepted, got {other:?}"),
        }
        match l.enqueue(PacketRef(4), 1000, SimTime::ZERO) {
            EnqueueOutcome::Dropped(p) => assert_eq!(p, PacketRef(4)),
            other => panic!("expected Dropped, got {other:?}"),
        }
        assert_eq!(l.queue_len(SimTime::ZERO), 2);
        assert_eq!(l.dropped_queue_full, 1);
        assert_eq!(l.enqueued, 3);
    }

    #[test]
    fn queue_drains_as_serialization_progresses() {
        let mut l = link(2);
        let _ = l.enqueue(PacketRef(1), 1000, SimTime::ZERO);
        let _ = l.enqueue(PacketRef(2), 2000, SimTime::ZERO);
        // Packet 2 starts serializing at 1 ms (2000 bytes => 2 ms on the
        // wire), so the queue is empty from then on and a third packet
        // accepted at 1 ms finishes at 1 + 2 + 2 = 5 ms.
        let t1 = SimTime::ZERO + SimDuration::from_millis(1);
        assert_eq!(l.queue_len(SimTime::ZERO), 1);
        assert_eq!(l.queue_len(t1), 0);
        match l.enqueue(PacketRef(3), 2000, t1) {
            EnqueueOutcome::Accepted(due) => {
                assert_eq!(due, SimTime::ZERO + SimDuration::from_millis(10));
            }
            other => panic!("expected Accepted, got {other:?}"),
        }
        assert!(!l.is_busy(SimTime::ZERO + SimDuration::from_millis(5)));
    }

    #[test]
    fn delivery_fifo_pops_only_due_entries() {
        let mut l = link(2);
        let t1 = SimTime::ZERO + SimDuration::from_millis(1);
        let t2 = SimTime::ZERO + SimDuration::from_millis(2);
        l.push_delivery(t1, PacketRef(10));
        l.push_delivery(t2, PacketRef(11));
        assert_eq!(l.pop_due(SimTime::ZERO), None);
        assert_eq!(l.pop_due(t1), Some(PacketRef(10)));
        assert_eq!(l.pop_due(t1), None, "entry at t2 is not yet due");
        assert_eq!(l.pop_due(t2), Some(PacketRef(11)));
        assert_eq!(l.pop_due(t2), None);
    }

    #[test]
    fn snapshot_round_trips_queues_and_counters() {
        let mut l = link(2);
        let _ = l.enqueue(PacketRef(1), 1000, SimTime::ZERO);
        let _ = l.enqueue(PacketRef(2), 2000, SimTime::ZERO);
        let _ = l.enqueue(PacketRef(3), 1000, SimTime::ZERO);
        let _ = l.enqueue(PacketRef(4), 1000, SimTime::ZERO); // dropped
        let mut w = SnapWriter::new();
        l.snap_save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = link(2);
        let mut r = SnapReader::new(&bytes);
        restored.snap_restore(&mut r).unwrap();
        assert!(r.is_empty());
        let mut ha = mafic_obs::Fnv64::new();
        let mut hb = mafic_obs::Fnv64::new();
        l.hash_state(&mut ha);
        restored.hash_state(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
        assert_eq!(
            restored.queue_len(SimTime::ZERO),
            l.queue_len(SimTime::ZERO)
        );
        assert_eq!(
            restored.pop_due(l.busy_until + l.spec.delay),
            Some(PacketRef(1))
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = LinkSpec::new(0.0, SimDuration::ZERO, 1);
    }
}
