//! A minimal JSON reader for the ledger's own JSONL output.
//!
//! Deliberately small: objects, arrays, strings (with the escapes the
//! writer emits plus `\uXXXX`), unsigned integers, booleans, and null.
//! Signed/float numbers are rejected — the ledger never writes them,
//! and hashes travel as hex strings precisely because a `u64` does not
//! survive a JSON `f64`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source key order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a vector of strings, if it is an array of strings.
    #[must_use]
    pub fn as_str_array(&self) -> Option<Vec<String>> {
        let items = self.as_array()?;
        items
            .iter()
            .map(|v| v.as_str().map(str::to_string))
            .collect()
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E' | b'-' | b'+')) {
            return Err(format!("non-integer number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Parses one line of JSON into a [`JsonValue`].
///
/// # Errors
///
/// Returns a message locating the first malformed byte.
pub fn parse_json_line(line: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structures() {
        let v = parse_json_line(r#"{"a":[1,2,{"b":"x"}],"c":true,"d":null}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert_eq!(v.get("c"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
    }

    #[test]
    fn parses_escapes() {
        let v = parse_json_line(r#"{"s":"a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_floats_and_trailing_input() {
        assert!(parse_json_line("1.5").is_err());
        assert!(parse_json_line("{} x").is_err());
        assert!(parse_json_line("{").is_err());
    }

    #[test]
    fn u64_numbers_are_exact() {
        let v = parse_json_line("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }
}
