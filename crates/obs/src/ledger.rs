//! The run ledger: header, per-interval chained component hashes, and
//! the probe/builder pair the runner drives once per monitor interval.

use crate::fnv::Fnv64;
use crate::json::{parse_json_line, JsonValue};
use crate::snap::{SnapError, SnapReader, SnapWriter, SnapshotState};
use crate::LEDGER_VERSION;
use std::fmt::Write as _;

/// Build metadata identifying the run a ledger describes.
///
/// `workers` is informational only: the engine produces byte-identical
/// results at any worker count, so the differ never compares it (a
/// `MAFIC_JOBS=1` vs `MAFIC_JOBS=4` ledger pair must diff clean).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerHeader {
    /// Wire-format version ([`LEDGER_VERSION`] at write time).
    pub ledger_version: u32,
    /// Version of the crate that recorded the ledger.
    pub crate_version: String,
    /// Scenario seed.
    pub seed: u64,
    /// FNV-1a hash of the scenario spec's debug rendering.
    pub spec_fingerprint: u64,
    /// Worker count the run was launched with (0 = unknown/irrelevant).
    pub workers: u32,
}

/// One monitor interval's snapshot: the chained hash of every component
/// plus the cumulative counter values, both parallel to the name lists
/// in [`RunLedger`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalRecord {
    /// Zero-based interval index.
    pub index: u64,
    /// Simulation time at the end of the interval, in nanoseconds.
    pub at_nanos: u64,
    /// Chained per-component hashes (parallel to `RunLedger::components`).
    pub hashes: Vec<u64>,
    /// Cumulative counters (parallel to `RunLedger::counters`).
    pub counters: Vec<u64>,
}

/// A complete run ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunLedger {
    /// Build metadata.
    pub header: LedgerHeader,
    /// Component labels, fixed by the first recorded interval.
    pub components: Vec<String>,
    /// Counter names, fixed by the first recorded interval.
    pub counters: Vec<String>,
    /// One record per monitor interval, in order.
    pub intervals: Vec<IntervalRecord>,
    /// Rendered tail of the event trace, if tracing was enabled.
    pub trace_tail: Vec<String>,
}

/// Collects one interval's component hashes and counters.
///
/// The runner hands this to every `StateHash`-bearing component; each
/// call to [`IntervalProbe::component`] runs the provided closure over a
/// fresh hasher, so components cannot bleed into each other.
#[derive(Debug, Default)]
pub struct IntervalProbe {
    components: Vec<(String, u64)>,
    counters: Vec<(String, u64)>,
}

impl IntervalProbe {
    /// An empty probe.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Hashes one component under `label` by running `f` over a fresh
    /// hasher.
    pub fn component(&mut self, label: &str, f: impl FnOnce(&mut Fnv64)) {
        let mut h = Fnv64::new();
        f(&mut h);
        self.components.push((label.to_string(), h.finish()));
    }

    /// Records one cumulative counter value.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.counters.push((name.to_string(), value));
    }

    /// Component `(label, raw hash)` pairs recorded so far.
    #[must_use]
    pub fn components(&self) -> &[(String, u64)] {
        &self.components
    }
}

/// Accumulates probes into a [`RunLedger`], chaining each component's
/// hash across intervals: `chain_i = fnv(chain_{i-1} ‖ raw_i)`.
///
/// Chaining means a single diverging interval poisons every later hash
/// of that component, so the *first* mismatching interval in a diff is
/// guaranteed to be the first real divergence.
#[derive(Debug)]
pub struct LedgerBuilder {
    header: LedgerHeader,
    components: Vec<String>,
    counters: Vec<String>,
    chains: Vec<u64>,
    intervals: Vec<IntervalRecord>,
}

impl LedgerBuilder {
    /// Starts a ledger with `header` (its version field is overwritten
    /// with [`LEDGER_VERSION`]).
    #[must_use]
    pub fn new(mut header: LedgerHeader) -> Self {
        header.ledger_version = LEDGER_VERSION;
        LedgerBuilder {
            header,
            components: Vec::new(),
            counters: Vec::new(),
            chains: Vec::new(),
            intervals: Vec::new(),
        }
    }

    /// Folds one interval's probe into the ledger.
    ///
    /// # Panics
    ///
    /// The first interval fixes the component and counter name sets;
    /// any later interval probing a different set is a programming
    /// error and panics.
    pub fn record_interval(&mut self, at_nanos: u64, probe: &IntervalProbe) {
        if self.intervals.is_empty() {
            self.components = probe.components.iter().map(|(n, _)| n.clone()).collect();
            self.counters = probe.counters.iter().map(|(n, _)| n.clone()).collect();
            self.chains = vec![0; self.components.len()];
        } else {
            assert_eq!(
                self.components.len(),
                probe.components.len(),
                "interval probed a different component set"
            );
            for (seen, (name, _)) in self.components.iter().zip(&probe.components) {
                assert_eq!(seen, name, "interval probed a different component set");
            }
            assert_eq!(
                self.counters.len(),
                probe.counters.len(),
                "interval probed a different counter set"
            );
        }
        let mut hashes = Vec::with_capacity(self.chains.len());
        for (chain, (_, raw)) in self.chains.iter_mut().zip(&probe.components) {
            let mut h = Fnv64::new();
            h.write_u64(*chain);
            h.write_u64(*raw);
            *chain = h.finish();
            hashes.push(*chain);
        }
        self.intervals.push(IntervalRecord {
            index: self.intervals.len() as u64,
            at_nanos,
            hashes,
            counters: probe.counters.iter().map(|&(_, v)| v).collect(),
        });
    }

    /// Number of intervals recorded so far.
    #[must_use]
    pub fn interval_count(&self) -> usize {
        self.intervals.len()
    }

    /// The chained hash of every component as of the last recorded
    /// interval, as `(label, chain)` pairs — the integrity table a
    /// checkpoint embeds.
    #[must_use]
    pub fn chained_hashes(&self) -> Vec<(String, u64)> {
        self.components
            .iter()
            .cloned()
            .zip(self.chains.iter().copied())
            .collect()
    }

    /// Finishes the ledger, attaching a rendered trace tail.
    #[must_use]
    pub fn finish(self, trace_tail: Vec<String>) -> RunLedger {
        RunLedger {
            header: self.header,
            components: self.components,
            counters: self.counters,
            intervals: self.intervals,
            trace_tail,
        }
    }
}

/// Serializes the builder's accumulated recording state (name sets,
/// chain values, interval records) so a checkpointed run's restored
/// ledger continues the exact same chains. The header is *not* part of
/// the payload: the restorer rebuilds it from the spec it was handed,
/// which the snapshot header has already been verified against.
impl SnapshotState for LedgerBuilder {
    fn snap_save(&self, w: &mut SnapWriter) {
        w.write_usize(self.components.len());
        for name in &self.components {
            w.write_str(name);
        }
        w.write_usize(self.counters.len());
        for name in &self.counters {
            w.write_str(name);
        }
        for chain in &self.chains {
            w.write_u64(*chain);
        }
        w.write_usize(self.intervals.len());
        for rec in &self.intervals {
            w.write_u64(rec.index);
            w.write_u64(rec.at_nanos);
            for h in &rec.hashes {
                w.write_u64(*h);
            }
            for c in &rec.counters {
                w.write_u64(*c);
            }
        }
    }

    fn snap_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n_components = r.read_usize()?;
        let mut components = Vec::with_capacity(n_components.min(1024));
        for _ in 0..n_components {
            components.push(r.read_str()?);
        }
        let n_counters = r.read_usize()?;
        let mut counters = Vec::with_capacity(n_counters.min(1024));
        for _ in 0..n_counters {
            counters.push(r.read_str()?);
        }
        let mut chains = Vec::with_capacity(n_components.min(1024));
        for _ in 0..n_components {
            chains.push(r.read_u64()?);
        }
        let n_intervals = r.read_usize()?;
        let mut intervals = Vec::with_capacity(n_intervals.min(1024));
        for _ in 0..n_intervals {
            let index = r.read_u64()?;
            let at_nanos = r.read_u64()?;
            let mut hashes = Vec::with_capacity(n_components.min(1024));
            for _ in 0..n_components {
                hashes.push(r.read_u64()?);
            }
            let mut cvals = Vec::with_capacity(n_counters.min(1024));
            for _ in 0..n_counters {
                cvals.push(r.read_u64()?);
            }
            intervals.push(IntervalRecord {
                index,
                at_nanos,
                hashes,
                counters: cvals,
            });
        }
        self.components = components;
        self.counters = counters;
        self.chains = chains;
        self.intervals = intervals;
        Ok(())
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_str_array(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, item);
    }
    out.push(']');
}

impl RunLedger {
    /// Serializes the ledger as JSONL: one header line, one line per
    /// interval, one line per trace-tail entry.
    ///
    /// Hashes are written as 16-hex-digit strings (a `u64` does not
    /// survive a round-trip through a JSON number).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"type\":\"header\",\"ledger_version\":{},\"crate_version\":",
            self.header.ledger_version
        );
        push_json_str(&mut out, &self.header.crate_version);
        let _ = write!(
            out,
            ",\"seed\":{},\"spec_fingerprint\":\"{:016x}\",\"workers\":{},\"components\":",
            self.header.seed, self.header.spec_fingerprint, self.header.workers
        );
        push_str_array(&mut out, &self.components);
        out.push_str(",\"counters\":");
        push_str_array(&mut out, &self.counters);
        out.push_str("}\n");
        for rec in &self.intervals {
            let _ = write!(
                out,
                "{{\"type\":\"interval\",\"index\":{},\"at_nanos\":{},\"hashes\":[",
                rec.index, rec.at_nanos
            );
            for (i, h) in rec.hashes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{h:016x}\"");
            }
            out.push_str("],\"counters\":[");
            for (i, c) in rec.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("]}\n");
        }
        for line in &self.trace_tail {
            out.push_str("{\"type\":\"trace\",\"line\":");
            push_json_str(&mut out, line);
            out.push_str("}\n");
        }
        out
    }

    /// Parses a ledger back from its JSONL form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input.
    pub fn from_jsonl(text: &str) -> Result<RunLedger, String> {
        let mut header: Option<LedgerHeader> = None;
        let mut components = Vec::new();
        let mut counters = Vec::new();
        let mut intervals = Vec::new();
        let mut trace_tail = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            // `#` comments let tooling annotate concatenated ledgers
            // (e.g. `run_ledger`'s `# run <n>` separators).
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let v = parse_json_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let kind = v
                .get("type")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("line {}: missing \"type\"", lineno + 1))?;
            match kind {
                "header" => {
                    components = v
                        .get("components")
                        .and_then(JsonValue::as_str_array)
                        .ok_or_else(|| format!("line {}: bad components", lineno + 1))?;
                    counters = v
                        .get("counters")
                        .and_then(JsonValue::as_str_array)
                        .ok_or_else(|| format!("line {}: bad counters", lineno + 1))?;
                    header = Some(LedgerHeader {
                        ledger_version: v
                            .get("ledger_version")
                            .and_then(JsonValue::as_u64)
                            .ok_or_else(|| format!("line {}: bad ledger_version", lineno + 1))?
                            as u32,
                        crate_version: v
                            .get("crate_version")
                            .and_then(JsonValue::as_str)
                            .unwrap_or("")
                            .to_string(),
                        seed: v
                            .get("seed")
                            .and_then(JsonValue::as_u64)
                            .ok_or_else(|| format!("line {}: bad seed", lineno + 1))?,
                        spec_fingerprint: v
                            .get("spec_fingerprint")
                            .and_then(JsonValue::as_str)
                            .and_then(|s| u64::from_str_radix(s, 16).ok())
                            .ok_or_else(|| format!("line {}: bad spec_fingerprint", lineno + 1))?,
                        workers: v.get("workers").and_then(JsonValue::as_u64).unwrap_or(0) as u32,
                    });
                }
                "interval" => {
                    let hashes = v
                        .get("hashes")
                        .and_then(JsonValue::as_array)
                        .ok_or_else(|| format!("line {}: bad hashes", lineno + 1))?
                        .iter()
                        .map(|h| {
                            h.as_str()
                                .and_then(|s| u64::from_str_radix(s, 16).ok())
                                .ok_or_else(|| format!("line {}: bad hash entry", lineno + 1))
                        })
                        .collect::<Result<Vec<u64>, String>>()?;
                    let cvals = v
                        .get("counters")
                        .and_then(JsonValue::as_array)
                        .ok_or_else(|| format!("line {}: bad counters", lineno + 1))?
                        .iter()
                        .map(|c| {
                            c.as_u64()
                                .ok_or_else(|| format!("line {}: bad counter entry", lineno + 1))
                        })
                        .collect::<Result<Vec<u64>, String>>()?;
                    intervals.push(IntervalRecord {
                        index: v
                            .get("index")
                            .and_then(JsonValue::as_u64)
                            .ok_or_else(|| format!("line {}: bad index", lineno + 1))?,
                        at_nanos: v
                            .get("at_nanos")
                            .and_then(JsonValue::as_u64)
                            .ok_or_else(|| format!("line {}: bad at_nanos", lineno + 1))?,
                        hashes,
                        counters: cvals,
                    });
                }
                "trace" => {
                    trace_tail.push(
                        v.get("line")
                            .and_then(JsonValue::as_str)
                            .unwrap_or("")
                            .to_string(),
                    );
                }
                other => return Err(format!("line {}: unknown type {other:?}", lineno + 1)),
            }
        }
        let header = header.ok_or_else(|| "missing header line".to_string())?;
        Ok(RunLedger {
            header,
            components,
            counters,
            intervals,
            trace_tail,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(seed: u64) -> LedgerHeader {
        LedgerHeader {
            ledger_version: 0,
            crate_version: "0.1.0".into(),
            seed,
            spec_fingerprint: 0xdead_beef,
            workers: 0,
        }
    }

    fn probe(vals: &[(&str, u64)], counters: &[(&str, u64)]) -> IntervalProbe {
        let mut p = IntervalProbe::new();
        for &(name, v) in vals {
            p.component(name, |h| h.write_u64(v));
        }
        for &(name, v) in counters {
            p.counter(name, v);
        }
        p
    }

    #[test]
    fn chaining_propagates_divergence_forward() {
        let mut a = LedgerBuilder::new(header(1));
        let mut b = LedgerBuilder::new(header(1));
        // Interval 0 identical, interval 1 diverges, interval 2
        // identical again in raw terms — but the chain must keep the
        // hashes apart from interval 1 onward.
        for (ledger, mid) in [(&mut a, 7u64), (&mut b, 8u64)] {
            ledger.record_interval(100, &probe(&[("x", 1)], &[]));
            ledger.record_interval(200, &probe(&[("x", mid)], &[]));
            ledger.record_interval(300, &probe(&[("x", 1)], &[]));
        }
        let a = a.finish(Vec::new());
        let b = b.finish(Vec::new());
        assert_eq!(a.intervals[0].hashes, b.intervals[0].hashes);
        assert_ne!(a.intervals[1].hashes, b.intervals[1].hashes);
        assert_ne!(a.intervals[2].hashes, b.intervals[2].hashes);
    }

    #[test]
    #[should_panic(expected = "different component set")]
    fn component_set_is_fixed_by_first_interval() {
        let mut l = LedgerBuilder::new(header(1));
        l.record_interval(100, &probe(&[("x", 1)], &[]));
        l.record_interval(200, &probe(&[("y", 1)], &[]));
    }

    #[test]
    fn jsonl_roundtrip_is_lossless() {
        let mut b = LedgerBuilder::new(header(42));
        b.record_interval(
            100_000_000,
            &probe(&[("alpha", 3), ("beta", u64::MAX)], &[("drops", 12)]),
        );
        b.record_interval(
            200_000_000,
            &probe(&[("alpha", 4), ("beta", 0)], &[("drops", 30)]),
        );
        let ledger = b.finish(vec!["t=0.1 drop flow=1 reason=\"probing\"".into()]);
        let text = ledger.to_jsonl();
        let back = RunLedger::from_jsonl(&text).expect("roundtrip parses");
        assert_eq!(ledger, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(RunLedger::from_jsonl("not json").is_err());
        assert!(RunLedger::from_jsonl("{\"type\":\"interval\"}").is_err());
        assert!(RunLedger::from_jsonl("").is_err());
    }

    #[test]
    fn builder_snapshot_round_trip_continues_the_chains() {
        use crate::snap::{SnapReader, SnapWriter, SnapshotState};

        let mut original = LedgerBuilder::new(header(5));
        original.record_interval(100, &probe(&[("x", 1), ("y", 2)], &[("c", 3)]));
        original.record_interval(200, &probe(&[("x", 4), ("y", 5)], &[("c", 6)]));

        let mut w = SnapWriter::new();
        original.snap_save(&mut w);
        let bytes = w.into_bytes();

        // Restore onto a fresh builder (same header, as a restorer
        // would rebuild it from the spec), then record one more
        // interval into both and require identical ledgers.
        let mut restored = LedgerBuilder::new(header(5));
        restored
            .snap_restore(&mut SnapReader::new(&bytes))
            .expect("restore");
        assert_eq!(restored.interval_count(), 2);
        assert_eq!(restored.chained_hashes(), original.chained_hashes());

        let next = probe(&[("x", 7), ("y", 8)], &[("c", 9)]);
        original.record_interval(300, &next);
        restored.record_interval(300, &next);
        assert_eq!(
            original.finish(Vec::new()),
            restored.finish(Vec::new()),
            "a restored builder must continue the chains bit-for-bit"
        );
    }

    #[test]
    fn builder_snapshot_restore_rejects_truncation() {
        use crate::snap::{SnapError, SnapReader, SnapWriter, SnapshotState};

        let mut b = LedgerBuilder::new(header(5));
        b.record_interval(100, &probe(&[("x", 1)], &[]));
        let mut w = SnapWriter::new();
        b.snap_save(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = LedgerBuilder::new(header(5));
        assert_eq!(
            fresh
                .snap_restore(&mut SnapReader::new(&bytes[..bytes.len() - 1]))
                .unwrap_err(),
            SnapError::Truncated
        );
    }
}
