//! Linter policy: sanctioned files, the crate-layering DAG, and file
//! classification.
//!
//! The defaults encode *this workspace's* contracts (ARCHITECTURE.md
//! "Static guarantees"); tests construct custom configs to exercise the
//! rule engine in isolation.

/// How a source file participates in the workspace, which decides which
/// rules apply to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library source: `crates/*/src/**` (excluding `src/bin/**` and a
    /// crate-root `src/main.rs`) plus the facade's `src/**`. Subject to
    /// every source rule, including stdout purity.
    Library,
    /// Binary source: `src/bin/**` or a crate-root `src/main.rs`.
    /// Figure binaries *own* stdout, so the purity rule does not apply.
    Binary,
    /// Integration tests (`tests/**`), examples, and benches. stdout is
    /// theirs; determinism rules still apply.
    Harness,
}

/// Classify a workspace-relative path (forward slashes) into a
/// [`FileClass`].
#[must_use]
pub fn classify(rel_path: &str) -> FileClass {
    let is_bin = rel_path.contains("/src/bin/") || rel_path.ends_with("/src/main.rs");
    if is_bin {
        return FileClass::Binary;
    }
    let is_harness = rel_path.starts_with("tests/")
        || rel_path.starts_with("examples/")
        || rel_path.contains("/tests/")
        || rel_path.contains("/examples/")
        || rel_path.contains("/benches/");
    if is_harness {
        return FileClass::Harness;
    }
    FileClass::Library
}

/// One crate's layering contract: which workspace crates (and vendored
/// stand-ins) its `[dependencies]` section may name.
#[derive(Debug, Clone)]
pub struct CrateLayer {
    /// Package name as written in the manifest (`mafic-netsim`, ...).
    pub name: &'static str,
    /// Layer rank; `[dev-dependencies]` may reach any strictly lower
    /// rank, which keeps test-only conveniences from becoming covert
    /// back-edges in the compiled library graph.
    pub rank: u8,
    /// Exact allowlist for the `[dependencies]` section.
    pub deps: &'static [&'static str],
}

/// The linter's complete policy.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Files (workspace-relative) where the nondeterminism-source ban
    /// does not apply, with the reason each is sanctioned.
    pub sanctioned_nondet: Vec<(String, String)>,
    /// Files allowed to contain `unsafe` tokens (each block still
    /// requires a `// SAFETY:` comment), with reasons.
    pub sanctioned_unsafe: Vec<(String, String)>,
    /// `lib.rs` files exempt from the required crate attributes.
    pub lib_attr_exempt: Vec<String>,
    /// The crate DAG, one entry per workspace crate.
    pub layers: Vec<CrateLayer>,
    /// Dependency names that are not workspace crates but are allowed
    /// anywhere (the vendored, registry-free stand-ins).
    pub external_allowed: Vec<&'static str>,
}

impl LintConfig {
    /// The workspace policy enforced in CI.
    #[must_use]
    pub fn workspace() -> Self {
        Self {
            sanctioned_nondet: vec![
                (
                    "crates/bench/src/bin/bench_harness.rs".into(),
                    "bench harness: wall-clock timing and CLI args are its whole job".into(),
                ),
                (
                    "crates/experiments/src/engine.rs".into(),
                    "experiment engine: the std::thread job pool and MAFIC_JOBS/MAFIC_TRIALS \
                     env parsing are the sanctioned nondeterminism boundary"
                        .into(),
                ),
                (
                    "crates/lint/src/main.rs".into(),
                    "linter CLI: std::env::args and process exit codes".into(),
                ),
                (
                    "crates/obs/src/bin/mafic_trace.rs".into(),
                    "trace inspector CLI: std::env::args, ledger file IO, and process \
                     exit codes"
                        .into(),
                ),
                (
                    "crates/experiments/src/bin/run_ledger.rs".into(),
                    "ledger emitter CLI: std::env::args and process exit codes (runs \
                     themselves stay deterministic — that is what the CI gate checks)"
                        .into(),
                ),
                (
                    "crates/experiments/src/bin/checkpoint.rs".into(),
                    "checkpoint gate CLI: std::env::args and process exit codes (the \
                     round trip it gates is itself byte-deterministic)"
                        .into(),
                ),
            ],
            sanctioned_unsafe: vec![(
                "crates/bench/src/bin/bench_harness.rs".into(),
                "CountingAlloc GlobalAlloc impl (allocation accounting requires unsafe)".into(),
            )],
            lib_attr_exempt: Vec::new(),
            layers: vec![
                // mafic-obs sits below netsim: the ledger primitives
                // (FNV chain, probe, differ) must never see simulator
                // types, so every layer can implement `StateHash`.
                CrateLayer {
                    name: "mafic-obs",
                    rank: 0,
                    deps: &[],
                },
                CrateLayer {
                    name: "mafic-loglog",
                    rank: 0,
                    deps: &[],
                },
                CrateLayer {
                    name: "mafic-lint",
                    rank: 0,
                    deps: &[],
                },
                CrateLayer {
                    name: "mafic-netsim",
                    rank: 1,
                    deps: &["mafic-obs"],
                },
                // The adversary engine sees only what an attacker can:
                // its own RNG and snapshot plumbing. No simulator,
                // transport, or pushback types may leak in — the
                // observability boundary is a layering contract, not
                // just a doc comment.
                CrateLayer {
                    name: "mafic-adversary",
                    rank: 1,
                    deps: &["mafic-obs", "rand"],
                },
                CrateLayer {
                    name: "mafic-metrics",
                    rank: 2,
                    deps: &["mafic-netsim"],
                },
                CrateLayer {
                    name: "mafic-pushback",
                    rank: 2,
                    deps: &["mafic-netsim", "mafic-obs"],
                },
                CrateLayer {
                    name: "mafic-topology",
                    rank: 2,
                    deps: &["mafic-netsim", "rand"],
                },
                CrateLayer {
                    name: "mafic-transport",
                    rank: 2,
                    deps: &["mafic-netsim", "rand"],
                },
                CrateLayer {
                    name: "mafic",
                    rank: 2,
                    deps: &["mafic-loglog", "mafic-netsim", "mafic-obs", "rand"],
                },
                CrateLayer {
                    name: "mafic-workload",
                    rank: 3,
                    deps: &[
                        "mafic",
                        "mafic-adversary",
                        "mafic-loglog",
                        "mafic-metrics",
                        "mafic-netsim",
                        "mafic-obs",
                        "mafic-pushback",
                        "mafic-topology",
                        "mafic-transport",
                        "rand",
                    ],
                },
                CrateLayer {
                    name: "mafic-experiments",
                    rank: 4,
                    deps: &[
                        "mafic",
                        "mafic-adversary",
                        "mafic-loglog",
                        "mafic-metrics",
                        "mafic-netsim",
                        "mafic-obs",
                        "mafic-topology",
                        "mafic-workload",
                    ],
                },
                CrateLayer {
                    name: "mafic-bench",
                    rank: 5,
                    deps: &[
                        "mafic-experiments",
                        "mafic-netsim",
                        "mafic-topology",
                        "mafic-workload",
                    ],
                },
                CrateLayer {
                    name: "mafic-suite",
                    rank: 6,
                    deps: &[
                        "mafic",
                        "mafic-adversary",
                        "mafic-experiments",
                        "mafic-loglog",
                        "mafic-metrics",
                        "mafic-netsim",
                        "mafic-obs",
                        "mafic-pushback",
                        "mafic-topology",
                        "mafic-transport",
                        "mafic-workload",
                    ],
                },
            ],
            external_allowed: vec!["rand", "criterion"],
        }
    }

    /// Reason `rel_path` is sanctioned for the nondeterminism ban, if
    /// it is.
    #[must_use]
    pub fn nondet_sanction(&self, rel_path: &str) -> Option<&str> {
        self.sanctioned_nondet
            .iter()
            .find(|(p, _)| p == rel_path)
            .map(|(_, r)| r.as_str())
    }

    /// Reason `rel_path` is sanctioned for `unsafe`, if it is.
    #[must_use]
    pub fn unsafe_sanction(&self, rel_path: &str) -> Option<&str> {
        self.sanctioned_unsafe
            .iter()
            .find(|(p, _)| p == rel_path)
            .map(|(_, r)| r.as_str())
    }

    /// Look up a crate's layer entry by package name.
    #[must_use]
    pub fn layer(&self, name: &str) -> Option<&CrateLayer> {
        self.layers.iter().find(|l| l.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(classify("crates/netsim/src/sim.rs"), FileClass::Library);
        assert_eq!(classify("src/lib.rs"), FileClass::Library);
        assert_eq!(
            classify("crates/experiments/src/bin/all_figures.rs"),
            FileClass::Binary
        );
        assert_eq!(classify("crates/lint/src/main.rs"), FileClass::Binary);
        assert_eq!(classify("tests/determinism.rs"), FileClass::Harness);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::Harness);
        assert_eq!(
            classify("crates/bench/benches/microbench.rs"),
            FileClass::Harness
        );
    }

    #[test]
    fn workspace_dag_is_acyclic_and_rank_consistent() {
        let cfg = LintConfig::workspace();
        for layer in &cfg.layers {
            for dep in layer.deps {
                if let Some(dep_layer) = cfg.layer(dep) {
                    assert!(
                        dep_layer.rank < layer.rank,
                        "{} (rank {}) depends on {} (rank {}): not a DAG edge",
                        layer.name,
                        layer.rank,
                        dep,
                        dep_layer.rank
                    );
                } else {
                    assert!(
                        cfg.external_allowed.contains(dep),
                        "{dep} is neither a workspace crate nor vendored"
                    );
                }
            }
        }
    }
}
