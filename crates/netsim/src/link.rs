//! Simplex links with serialization delay, propagation delay, and a
//! drop-tail queue.
//!
//! A link transmits one packet at a time at `bandwidth_bps`; packets that
//! arrive while the transmitter is busy wait in a bounded FIFO queue and
//! are dropped (drop-tail) when the queue is full — the same model NS-2's
//! `SimplexLink` + `DropTail` queue combination provides.

use crate::ids::NodeId;
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Static parameters of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Transmission rate in bits per second.
    pub bandwidth_bps: f64,
    /// Propagation delay.
    pub delay: SimDuration,
    /// Maximum number of queued packets (excluding the one on the wire).
    pub queue_capacity: usize,
}

impl LinkSpec {
    /// A convenience constructor.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is not strictly positive and finite.
    #[must_use]
    pub fn new(bandwidth_bps: f64, delay: SimDuration, queue_capacity: usize) -> Self {
        assert!(
            bandwidth_bps.is_finite() && bandwidth_bps > 0.0,
            "bandwidth must be positive, got {bandwidth_bps}"
        );
        LinkSpec {
            bandwidth_bps,
            delay,
            queue_capacity,
        }
    }

    /// Time to serialize `size_bytes` onto the wire.
    #[must_use]
    pub fn tx_time(&self, size_bytes: u32) -> SimDuration {
        SimDuration::from_secs_f64(f64::from(size_bytes) * 8.0 / self.bandwidth_bps)
    }
}

impl Default for LinkSpec {
    /// 10 Mbit/s, 10 ms delay, 64-packet queue.
    fn default() -> Self {
        LinkSpec::new(10e6, SimDuration::from_millis(10), 64)
    }
}

/// Outcome of offering a packet to a link.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum EnqueueOutcome {
    /// Transmitter was idle; serialization starts now and finishes at the
    /// contained instant (schedule `LinkTxDone` then).
    StartTx(SimTime),
    /// Packet queued behind the current transmission.
    Queued,
    /// Queue full — packet dropped (drop-tail).
    Dropped(Packet),
}

/// Runtime state of a simplex link.
#[derive(Debug)]
pub(crate) struct Link {
    pub(crate) from: NodeId,
    pub(crate) to: NodeId,
    pub(crate) spec: LinkSpec,
    queue: VecDeque<Packet>,
    in_flight: Option<Packet>,
    /// Counters for observability.
    pub(crate) enqueued: u64,
    pub(crate) dropped_queue_full: u64,
}

impl Link {
    pub(crate) fn new(from: NodeId, to: NodeId, spec: LinkSpec) -> Self {
        Link {
            from,
            to,
            spec,
            queue: VecDeque::new(),
            in_flight: None,
            enqueued: 0,
            dropped_queue_full: 0,
        }
    }

    /// Offers a packet to the link at time `now`.
    pub(crate) fn enqueue(&mut self, packet: Packet, now: SimTime) -> EnqueueOutcome {
        if self.in_flight.is_none() {
            let done = now + self.spec.tx_time(packet.size_bytes);
            self.in_flight = Some(packet);
            self.enqueued += 1;
            EnqueueOutcome::StartTx(done)
        } else if self.queue.len() < self.spec.queue_capacity {
            self.queue.push_back(packet);
            self.enqueued += 1;
            EnqueueOutcome::Queued
        } else {
            self.dropped_queue_full += 1;
            EnqueueOutcome::Dropped(packet)
        }
    }

    /// Completes the current transmission. Returns the packet that just
    /// left the wire and, if another packet was waiting, the completion
    /// time of its transmission (schedule the next `LinkTxDone` then).
    ///
    /// # Panics
    ///
    /// Panics if no transmission was in progress — that indicates a
    /// scheduler bug, not a recoverable condition.
    pub(crate) fn tx_done(&mut self, now: SimTime) -> (Packet, Option<SimTime>) {
        let sent = self
            .in_flight
            .take()
            .expect("LinkTxDone fired with no transmission in progress");
        let next_done = self.queue.pop_front().map(|next| {
            let done = now + self.spec.tx_time(next.size_bytes);
            self.in_flight = Some(next);
            done
        });
        (sent, next_done)
    }

    /// Current queue occupancy (excluding the packet on the wire).
    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True if a packet is currently being serialized.
    pub(crate) fn is_busy(&self) -> bool {
        self.in_flight.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Addr, AgentId};
    use crate::packet::{FlowKey, PacketKind, Provenance};

    fn pkt(id: u64, size: u32) -> Packet {
        Packet {
            id,
            key: FlowKey::new(Addr::new(1), Addr::new(2), 1, 2),
            kind: PacketKind::Udp,
            size_bytes: size,
            created_at: SimTime::ZERO,
            provenance: Provenance {
                origin: AgentId(0),
                is_attack: false,
            },
            hops: 0,
        }
    }

    fn link(cap: usize) -> Link {
        Link::new(
            NodeId(0),
            NodeId(1),
            LinkSpec::new(8e6, SimDuration::from_millis(5), cap),
        )
    }

    #[test]
    fn tx_time_matches_bandwidth() {
        let spec = LinkSpec::new(8e6, SimDuration::ZERO, 1);
        // 1000 bytes at 8 Mbit/s = 1 ms.
        assert_eq!(spec.tx_time(1000), SimDuration::from_millis(1));
    }

    #[test]
    fn idle_link_starts_transmission() {
        let mut l = link(4);
        match l.enqueue(pkt(1, 1000), SimTime::ZERO) {
            EnqueueOutcome::StartTx(done) => {
                assert_eq!(done, SimTime::ZERO + SimDuration::from_millis(1));
            }
            other => panic!("expected StartTx, got {other:?}"),
        }
        assert!(l.is_busy());
    }

    #[test]
    fn busy_link_queues_then_drops() {
        let mut l = link(2);
        let _ = l.enqueue(pkt(1, 1000), SimTime::ZERO);
        assert_eq!(
            l.enqueue(pkt(2, 1000), SimTime::ZERO),
            EnqueueOutcome::Queued
        );
        assert_eq!(
            l.enqueue(pkt(3, 1000), SimTime::ZERO),
            EnqueueOutcome::Queued
        );
        match l.enqueue(pkt(4, 1000), SimTime::ZERO) {
            EnqueueOutcome::Dropped(p) => assert_eq!(p.id, 4),
            other => panic!("expected Dropped, got {other:?}"),
        }
        assert_eq!(l.queue_len(), 2);
        assert_eq!(l.dropped_queue_full, 1);
        assert_eq!(l.enqueued, 3);
    }

    #[test]
    fn tx_done_chains_queued_packets() {
        let mut l = link(2);
        let _ = l.enqueue(pkt(1, 1000), SimTime::ZERO);
        let _ = l.enqueue(pkt(2, 2000), SimTime::ZERO);
        let now = SimTime::ZERO + SimDuration::from_millis(1);
        let (sent, next) = l.tx_done(now);
        assert_eq!(sent.id, 1);
        // Next packet is 2000 bytes => 2 ms on an 8 Mbit/s link.
        assert_eq!(next, Some(now + SimDuration::from_millis(2)));
        let (sent2, next2) = l.tx_done(now + SimDuration::from_millis(2));
        assert_eq!(sent2.id, 2);
        assert_eq!(next2, None);
        assert!(!l.is_busy());
    }

    #[test]
    #[should_panic(expected = "no transmission in progress")]
    fn tx_done_without_tx_is_a_bug() {
        let mut l = link(1);
        let _ = l.tx_done(SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = LinkSpec::new(0.0, SimDuration::ZERO, 1);
    }
}
