//! Domain topology builder.
//!
//! Builds the protected domain of the paper's Figure 1 inside a
//! [`Simulator`]: one *last-hop router* fronting the victim host, a small
//! core, and a ring of *ingress routers* with source hosts behind them.
//! Shortest-path host routes are installed everywhere (BFS), and every
//! host gets an address from the [`AddressSpace`] plan.
//!
//! Link classes (all configurable through [`DomainConfig`]):
//!
//! * access links (host ↔ ingress): moderate bandwidth, per-host random
//!   propagation delay — this is what spreads flow RTTs,
//! * core links (ingress ↔ core ↔ last-hop): fast,
//! * the victim link (last-hop ↔ victim): the bottleneck under attack.

use crate::address::AddressSpace;
use mafic_netsim::{Addr, LinkSpec, NodeId, SimDuration, Simulator};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the domain topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainConfig {
    /// Total number of routers `N` (last-hop + core + ingress). Must be ≥ 3.
    pub n_routers: usize,
    /// Number of source hosts to attach (≥ 1), spread round-robin over the
    /// ingress routers.
    pub n_hosts: usize,
    /// Access-link bandwidth (bits/s).
    pub access_bandwidth_bps: f64,
    /// Minimum access-link propagation delay.
    pub access_delay_min: SimDuration,
    /// Maximum access-link propagation delay.
    pub access_delay_max: SimDuration,
    /// Core-link bandwidth (bits/s).
    pub core_bandwidth_bps: f64,
    /// Core-link propagation delay.
    pub core_delay: SimDuration,
    /// Victim-link bandwidth (bits/s) — the bottleneck.
    pub victim_bandwidth_bps: f64,
    /// Victim-link propagation delay.
    pub victim_delay: SimDuration,
    /// Queue capacity (packets) for access and core links.
    pub queue_capacity: usize,
    /// Queue capacity (packets) for the victim link.
    pub victim_queue_capacity: usize,
    /// Base octet of the domain's address plan (multi-domain topologies
    /// give every domain a distinct base so plans never overlap).
    pub base_octet: u8,
    /// Seed for the per-host delay draws.
    pub seed: u64,
}

impl Default for DomainConfig {
    /// The paper's Table II default domain: `N = 40` routers, with link
    /// parameters chosen so a default flow's RTT falls in 20–100 ms.
    fn default() -> Self {
        DomainConfig {
            n_routers: 40,
            n_hosts: 50,
            access_bandwidth_bps: 10e6,
            access_delay_min: SimDuration::from_millis(5),
            access_delay_max: SimDuration::from_millis(40),
            core_bandwidth_bps: 100e6,
            core_delay: SimDuration::from_millis(2),
            victim_bandwidth_bps: 10e6,
            victim_delay: SimDuration::from_millis(1),
            queue_capacity: 128,
            victim_queue_capacity: 128,
            base_octet: 10,
            seed: 0,
        }
    }
}

impl DomainConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_routers < 3 {
            return Err(format!("n_routers must be >= 3, got {}", self.n_routers));
        }
        if self.n_hosts == 0 {
            return Err("n_hosts must be >= 1".into());
        }
        if self.access_delay_min > self.access_delay_max {
            return Err("access_delay_min exceeds access_delay_max".into());
        }
        if self.queue_capacity == 0 || self.victim_queue_capacity == 0 {
            return Err("queue capacities must be >= 1".into());
        }
        if self.base_octet == 0 || self.base_octet == 192 {
            return Err(format!("base_octet {} is reserved", self.base_octet));
        }
        Ok(())
    }

    /// Number of core routers for `n_routers` (at least one).
    #[must_use]
    pub fn core_count(&self) -> usize {
        (self.n_routers.saturating_sub(1) / 5).max(1)
    }

    /// Number of ingress routers.
    #[must_use]
    pub fn ingress_count(&self) -> usize {
        self.n_routers - 1 - self.core_count()
    }
}

/// A source host attached to the domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostInfo {
    /// The host's node in the simulator.
    pub node: NodeId,
    /// Its (genuine) address.
    pub addr: Addr,
    /// Index of the ingress router it attaches to (into
    /// [`Domain::ingress_routers`]).
    pub ingress_index: usize,
    /// The host → ingress simplex link (the "via" link a LogLog tap sees
    /// when the host's packets enter the domain).
    pub uplink: mafic_netsim::LinkId,
}

/// The built domain: node handles plus the address plan.
#[derive(Debug, Clone)]
pub struct Domain {
    /// The victim's last-hop router.
    pub victim_router: NodeId,
    /// The victim host node.
    pub victim_host: NodeId,
    /// The victim host address.
    pub victim_addr: Addr,
    /// Ingress (edge) routers, in address-plan order.
    pub ingress_routers: Vec<NodeId>,
    /// Core routers.
    pub core_routers: Vec<NodeId>,
    /// Source hosts.
    pub hosts: Vec<HostInfo>,
    /// The address plan (legality oracle for MAFIC's PDT check).
    pub address_space: AddressSpace,
}

impl Domain {
    /// All routers: last-hop, then core, then ingress (the sketch-snapshot
    /// order used by the pushback monitor).
    #[must_use]
    pub fn routers(&self) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(1 + self.core_routers.len() + self.ingress_routers.len());
        v.push(self.victim_router);
        v.extend_from_slice(&self.core_routers);
        v.extend_from_slice(&self.ingress_routers);
        v
    }

    /// Builds the domain into `sim` and installs its intra-domain
    /// shortest-path routes.
    ///
    /// # Errors
    ///
    /// Returns the validation message if `config` is out of range.
    pub fn build(sim: &mut Simulator, config: &DomainConfig) -> Result<Domain, String> {
        let domain = Domain::build_unrouted(sim, config)?;
        install_host_routes(sim, &domain.destinations());
        Ok(domain)
    }

    /// The routable endpoints of this domain: every host plus the victim.
    #[must_use]
    pub fn destinations(&self) -> Vec<(Addr, NodeId)> {
        let mut destinations: Vec<(Addr, NodeId)> =
            self.hosts.iter().map(|h| (h.addr, h.node)).collect();
        destinations.push((self.victim_addr, self.victim_host));
        destinations
    }

    /// Builds the domain's nodes and links into `sim` **without**
    /// installing any routes. Multi-domain builders ([`crate::Internet`])
    /// use this, wire the inter-domain links, and then run one global
    /// [`install_host_routes`] pass over every destination so routes
    /// cross domain boundaries.
    ///
    /// # Errors
    ///
    /// Returns the validation message if `config` is out of range.
    pub fn build_unrouted(sim: &mut Simulator, config: &DomainConfig) -> Result<Domain, String> {
        config.validate()?;
        let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x746F_706F);
        let n_core = config.core_count();
        let n_ingress = config.ingress_count();
        let address_space = AddressSpace::with_base(config.base_octet, n_ingress);

        // --- Routers -----------------------------------------------------
        let victim_router = sim.add_node("last-hop");
        let core_routers: Vec<NodeId> = (0..n_core)
            .map(|i| sim.add_node(format!("core{i}")))
            .collect();
        let ingress_routers: Vec<NodeId> = (0..n_ingress)
            .map(|i| sim.add_node(format!("ingress{i}")))
            .collect();

        let core_spec = LinkSpec::new(
            config.core_bandwidth_bps,
            config.core_delay,
            config.queue_capacity,
        );
        // Core chain rooted at the last-hop router.
        sim.add_duplex_link(victim_router, core_routers[0], core_spec);
        for w in core_routers.windows(2) {
            sim.add_duplex_link(w[0], w[1], core_spec);
        }
        // Ingress routers hang off the core round-robin.
        for (i, &ingress) in ingress_routers.iter().enumerate() {
            let core = core_routers[i % n_core];
            sim.add_duplex_link(ingress, core, core_spec);
        }

        // --- Victim host ---------------------------------------------------
        let victim_host = sim.add_node("victim");
        let victim_spec = LinkSpec::new(
            config.victim_bandwidth_bps,
            config.victim_delay,
            config.victim_queue_capacity,
        );
        sim.add_duplex_link(victim_router, victim_host, victim_spec);
        let victim_addr = address_space.victim_addr();

        // --- Source hosts ----------------------------------------------------
        let mut hosts = Vec::with_capacity(config.n_hosts);
        let mut per_ingress_count = vec![0u32; n_ingress];
        for h in 0..config.n_hosts {
            let ingress_index = h % n_ingress;
            per_ingress_count[ingress_index] += 1;
            let addr = address_space.host_addr(ingress_index, per_ingress_count[ingress_index]);
            let node = sim.add_node(format!("host{h}"));
            let delay_range =
                config.access_delay_max.as_nanos() - config.access_delay_min.as_nanos();
            let delay = SimDuration::from_nanos(
                config.access_delay_min.as_nanos()
                    + if delay_range > 0 {
                        rng.gen_range(0..=delay_range)
                    } else {
                        0
                    },
            );
            let access_spec =
                LinkSpec::new(config.access_bandwidth_bps, delay, config.queue_capacity);
            let (uplink, _downlink) =
                sim.add_duplex_link(node, ingress_routers[ingress_index], access_spec);
            hosts.push(HostInfo {
                node,
                addr,
                ingress_index,
                uplink,
            });
        }

        let domain = Domain {
            victim_router,
            victim_host,
            victim_addr,
            ingress_routers,
            core_routers,
            hosts,
            address_space,
        };
        Ok(domain)
    }
}

/// Installs shortest-path host routes toward every `(address, node)`
/// destination, BFS-ing over the **entire** simulator graph — links added
/// after a domain was built (inter-domain wiring) are part of the graph,
/// so one pass after all topology construction routes across domain
/// boundaries. Re-running overwrites existing host routes consistently.
pub fn install_host_routes(sim: &mut Simulator, destinations: &[(Addr, NodeId)]) {
    // Adjacency: for each node, the (neighbor, link) pairs.
    let n = sim.node_count();
    let mut adj: Vec<Vec<(usize, mafic_netsim::LinkId)>> = vec![Vec::new(); n];
    for l in 0..sim.link_count() {
        let link = mafic_netsim::LinkId::from_index(l);
        let (from, to) = sim.link_endpoints(link);
        adj[from.index()].push((to.index(), link));
    }

    for &(addr, dst) in destinations {
        // BFS over the reverse graph from the destination; because all
        // links are installed in duplex pairs the graph is symmetric,
        // so a forward BFS gives the same hop distances.
        let mut dist = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        dist[dst.index()] = 0;
        queue.push_back(dst.index());
        while let Some(u) = queue.pop_front() {
            for &(v, _) in &adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        // At each node, route via the neighbor with the smallest
        // distance to the destination.
        for u in 0..n {
            if u == dst.index() || dist[u] == usize::MAX {
                continue;
            }
            let best = adj[u]
                .iter()
                .filter(|&&(v, _)| dist[v] < dist[u])
                .min_by_key(|&&(v, _)| dist[v]);
            if let Some(&(_, link)) = best {
                sim.add_route(NodeId::from_index(u), addr, link);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mafic_netsim::{CountingSink, FlowKey, PacketKind, SimTime};

    fn small_config() -> DomainConfig {
        DomainConfig {
            n_routers: 8,
            n_hosts: 6,
            seed: 11,
            ..DomainConfig::default()
        }
    }

    #[test]
    fn builds_expected_counts() {
        let mut sim = Simulator::new(1);
        let d = Domain::build(&mut sim, &small_config()).unwrap();
        let cfg = small_config();
        assert_eq!(d.core_routers.len(), cfg.core_count());
        assert_eq!(d.ingress_routers.len(), cfg.ingress_count());
        assert_eq!(
            1 + d.core_routers.len() + d.ingress_routers.len(),
            cfg.n_routers
        );
        assert_eq!(d.hosts.len(), 6);
        assert_eq!(d.routers().len(), cfg.n_routers);
    }

    #[test]
    fn every_host_can_reach_the_victim() {
        let mut sim = Simulator::new(1);
        let d = Domain::build(&mut sim, &small_config()).unwrap();
        let sink = sim.add_agent(d.victim_host, Box::new(CountingSink::new()), SimTime::ZERO);
        sim.bind_local_addr(d.victim_host, d.victim_addr, sink);
        for (i, host) in d.hosts.iter().enumerate() {
            let key = FlowKey::new(host.addr, d.victim_addr, 1000 + i as u16, 80);
            sim.inject_packet(host.node, key, PacketKind::Udp, 500, false, sim.now());
        }
        sim.run_until(SimTime::from_secs_f64(2.0));
        let sink = sim.agent::<CountingSink>(sink).unwrap();
        assert_eq!(sink.delivered() as usize, d.hosts.len());
    }

    #[test]
    fn victim_can_reach_every_host() {
        let mut sim = Simulator::new(1);
        let d = Domain::build(&mut sim, &small_config()).unwrap();
        let mut sinks = Vec::new();
        for host in &d.hosts {
            let sink = sim.add_agent(host.node, Box::new(CountingSink::new()), SimTime::ZERO);
            sim.bind_local_addr(host.node, host.addr, sink);
            sinks.push(sink);
        }
        for host in &d.hosts {
            let key = FlowKey::new(d.victim_addr, host.addr, 80, 2000);
            sim.inject_packet(d.victim_router, key, PacketKind::Udp, 100, false, sim.now());
        }
        sim.run_until(SimTime::from_secs_f64(2.0));
        for sink in sinks {
            assert_eq!(sim.agent::<CountingSink>(sink).unwrap().delivered(), 1);
        }
    }

    #[test]
    fn host_addresses_are_unique_and_legal() {
        let mut sim = Simulator::new(1);
        let d = Domain::build(&mut sim, &small_config()).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for h in &d.hosts {
            assert!(seen.insert(h.addr), "duplicate host address {}", h.addr);
            assert!(d.address_space.is_legal(h.addr));
        }
    }

    #[test]
    fn access_delays_vary_between_hosts() {
        let mut sim = Simulator::new(1);
        let cfg = DomainConfig {
            n_hosts: 20,
            ..small_config()
        };
        let _ = Domain::build(&mut sim, &cfg).unwrap();
        // Indirect check: the build is deterministic per seed; different
        // seeds give different topologies-but we can at least assert the
        // same seed replays identically.
        let mut sim2 = Simulator::new(1);
        let _ = Domain::build(&mut sim2, &cfg).unwrap();
        assert_eq!(sim.link_count(), sim2.link_count());
        assert_eq!(sim.node_count(), sim2.node_count());
    }

    #[test]
    fn validation_rejects_tiny_domains() {
        let mut sim = Simulator::new(1);
        let bad = DomainConfig {
            n_routers: 2,
            ..DomainConfig::default()
        };
        assert!(Domain::build(&mut sim, &bad).is_err());
    }

    #[test]
    fn default_matches_paper_table_ii() {
        let cfg = DomainConfig::default();
        assert_eq!(cfg.n_routers, 40);
        assert_eq!(cfg.n_hosts, 50);
    }
}
