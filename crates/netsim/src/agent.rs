//! Traffic agents — the end-host endpoints attached to nodes.
//!
//! Agents are event-driven: the simulator calls [`Agent::on_start`] once,
//! [`Agent::on_packet`] for every packet delivered to a local address, and
//! [`Agent::on_timer`] for each timer the agent scheduled. Effects are
//! buffered through [`AgentCtx`] (same command-buffer pattern as the
//! filters), which keeps agent implementations free of simulator borrows.

use crate::flows::FlowId;
use crate::ids::{AgentId, NodeId};
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};
use mafic_obs::{SnapError, SnapReader, SnapWriter};
use std::any::Any;

/// Commands an agent queues for the simulator.
#[derive(Debug)]
pub(crate) enum AgentCommand {
    SendPacket(Packet),
    ScheduleTimer { delay: SimDuration, token: u64 },
}

/// Execution context for agent callbacks.
#[derive(Debug)]
pub struct AgentCtx<'a> {
    now: SimTime,
    agent: AgentId,
    node: NodeId,
    /// The delivered packet's interned flow handle (`None` outside
    /// `on_packet`).
    flow: Option<FlowId>,
    next_packet_id: &'a mut u64,
    commands: &'a mut Vec<AgentCommand>,
}

impl<'a> AgentCtx<'a> {
    pub(crate) fn new(
        now: SimTime,
        agent: AgentId,
        node: NodeId,
        flow: Option<FlowId>,
        next_packet_id: &'a mut u64,
        commands: &'a mut Vec<AgentCommand>,
    ) -> Self {
        AgentCtx {
            now,
            agent,
            node,
            flow,
            next_packet_id,
            commands,
        }
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This agent's id.
    #[must_use]
    pub fn agent_id(&self) -> AgentId {
        self.agent
    }

    /// The node the agent is attached to.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The interned flow handle of the packet being delivered, when the
    /// callback is [`Agent::on_packet`]. Lets per-flow sinks index dense
    /// state instead of hashing the 4-tuple.
    #[must_use]
    pub fn packet_flow(&self) -> Option<FlowId> {
        self.flow
    }

    /// Allocates a fresh domain-unique packet id.
    pub fn fresh_packet_id(&mut self) -> u64 {
        let id = *self.next_packet_id;
        *self.next_packet_id += 1;
        id
    }

    /// Sends a packet into the network from the agent's node.
    ///
    /// The packet enters the node's normal forwarding path (it will be
    /// routed toward `packet.key.dst`); it does not traverse the node's own
    /// filter chain, matching a host stack injecting onto its access link.
    pub fn send_packet(&mut self, packet: Packet) {
        self.commands.push(AgentCommand::SendPacket(packet));
    }

    /// Schedules `on_timer(token)` after `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, token: u64) {
        self.commands
            .push(AgentCommand::ScheduleTimer { delay, token });
    }
}

/// An end-host traffic endpoint (TCP sender, sink, CBR zombie, …).
pub trait Agent {
    /// Called once at the agent's configured start time.
    fn on_start(&mut self, ctx: &mut AgentCtx<'_>);

    /// Called when a packet is delivered to an address bound to this agent.
    fn on_packet(&mut self, packet: Packet, ctx: &mut AgentCtx<'_>);

    /// Called when a timer scheduled via [`AgentCtx::schedule_in`] fires.
    fn on_timer(&mut self, _token: u64, _ctx: &mut AgentCtx<'_>) {}

    /// Serializes this agent's mutable state into a checkpoint payload.
    ///
    /// The default is a no-op for stateless agents. Implementations must
    /// write fields in a fixed order matched by [`Agent::snap_restore`],
    /// and must include any RNG internals — a restored run continues the
    /// stream mid-way instead of replaying it from the seed.
    fn snap_save(&self, _w: &mut SnapWriter) {}

    /// Overlays checkpointed state written by [`Agent::snap_save`].
    ///
    /// # Errors
    ///
    /// [`SnapError`] when the payload is truncated or malformed.
    fn snap_restore(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }

    /// Downcast support for harness inspection.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// An agent that counts deliveries and otherwise does nothing.
///
/// Useful as a traffic sink in tests and as the victim's blackhole
/// endpoint when only arrival accounting matters.
#[derive(Debug, Default)]
pub struct CountingSink {
    delivered: u64,
    delivered_bytes: u64,
    last_delivery: Option<SimTime>,
}

impl CountingSink {
    /// Creates a sink with zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Packets delivered so far.
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Bytes delivered so far.
    #[must_use]
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }

    /// Time of the most recent delivery.
    #[must_use]
    pub fn last_delivery(&self) -> Option<SimTime> {
        self.last_delivery
    }
}

impl Agent for CountingSink {
    fn on_start(&mut self, _ctx: &mut AgentCtx<'_>) {}

    fn on_packet(&mut self, packet: Packet, ctx: &mut AgentCtx<'_>) {
        self.delivered += 1;
        self.delivered_bytes += u64::from(packet.size_bytes);
        self.last_delivery = Some(ctx.now());
    }

    fn snap_save(&self, w: &mut SnapWriter) {
        w.write_u64(self.delivered);
        w.write_u64(self.delivered_bytes);
        match self.last_delivery {
            Some(at) => {
                w.write_bool(true);
                w.write_u64(at.as_nanos());
            }
            None => w.write_bool(false),
        }
    }

    fn snap_restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.delivered = r.read_u64()?;
        self.delivered_bytes = r.read_u64()?;
        self.last_delivery = if r.read_bool()? {
            Some(SimTime::from_nanos(r.read_u64()?))
        } else {
            None
        };
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Addr;
    use crate::packet::{FlowKey, PacketKind, Provenance};

    fn pkt(size: u32) -> Packet {
        Packet {
            id: 1,
            key: FlowKey::new(Addr::new(1), Addr::new(2), 1, 2),
            kind: PacketKind::Udp,
            size_bytes: size,
            created_at: SimTime::ZERO,
            provenance: Provenance {
                origin: AgentId(0),
                is_attack: false,
            },
            hops: 0,
        }
    }

    #[test]
    fn ctx_allocates_monotonic_ids_and_buffers() {
        let mut next = 5u64;
        let mut cmds = Vec::new();
        let mut ctx = AgentCtx::new(
            SimTime::ZERO,
            AgentId(1),
            NodeId(2),
            None,
            &mut next,
            &mut cmds,
        );
        assert_eq!(ctx.agent_id(), AgentId(1));
        assert_eq!(ctx.node(), NodeId(2));
        assert_eq!(ctx.fresh_packet_id(), 5);
        ctx.send_packet(pkt(10));
        ctx.schedule_in(SimDuration::from_millis(3), 9);
        assert_eq!(cmds.len(), 2);
        assert!(matches!(cmds[0], AgentCommand::SendPacket(_)));
        assert!(matches!(
            cmds[1],
            AgentCommand::ScheduleTimer { token: 9, .. }
        ));
    }

    #[test]
    fn counting_sink_accumulates() {
        let mut s = CountingSink::new();
        let mut next = 0u64;
        let mut cmds = Vec::new();
        let t = SimTime::from_secs_f64(1.0);
        let mut ctx = AgentCtx::new(t, AgentId(0), NodeId(0), None, &mut next, &mut cmds);
        s.on_packet(pkt(100), &mut ctx);
        s.on_packet(pkt(200), &mut ctx);
        assert_eq!(s.delivered(), 2);
        assert_eq!(s.delivered_bytes(), 300);
        assert_eq!(s.last_delivery(), Some(t));
    }
}
