//! Regenerates Fig. 6(a)–(c): false negative rates.

use mafic_experiments::{figures, trial_count};

fn main() {
    let trials = trial_count();
    for result in [
        figures::fig6a(trials),
        figures::fig6b(trials),
        figures::fig6c(trials),
    ] {
        match result {
            Ok(fig) => println!("{fig}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}
