//! Ablation studies beyond the paper's figures.
//!
//! These quantify the design choices DESIGN.md calls out:
//!
//! * MAFIC vs the proportional baseline (the motivating comparison),
//! * probe timer multiplier (1×, 2×, 4× RTT),
//! * hashed vs full flow labels (memory and collision cost),
//! * LogLog precision vs traffic-matrix accuracy.

use crate::figure::FigureData;
use crate::sweep::run_averaged;
use mafic::{DropPolicy, LabelMode};
use mafic_loglog::{LogLog, Precision};
use mafic_workload::ScenarioSpec;

/// MAFIC vs proportional baseline across the paper's metrics.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn policy_comparison(trials: u64) -> Result<FigureData, String> {
    let mut fig = FigureData::new(
        "Ablation A",
        "MAFIC vs proportional dropping (the [2] baseline)",
        "metric index (1=alpha 2=theta_n 3=theta_p 4=Lr 5=beta)",
        "percent",
    );
    for (label, policy) in [
        ("MAFIC", DropPolicy::Mafic),
        ("proportional", DropPolicy::Proportional),
    ] {
        let report = run_averaged(
            &ScenarioSpec {
                policy,
                ..ScenarioSpec::default()
            },
            trials,
        )?;
        fig.push_series(
            label,
            vec![
                (1.0, report.accuracy_pct),
                (2.0, report.false_negative_pct),
                (3.0, report.false_positive_pct),
                (4.0, report.legit_drop_pct),
                (5.0, report.traffic_reduction_pct),
            ],
        );
    }
    Ok(fig)
}

/// Probe-timer multiplier ablation: 1×, 2× (paper), 4× RTT.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn timer_multiplier(trials: u64) -> Result<FigureData, String> {
    let mut fig = FigureData::new(
        "Ablation B",
        "Probation timer length vs classification quality",
        "timer (x RTT)",
        "percent",
    );
    let mut accuracy = Vec::new();
    let mut legit_drops = Vec::new();
    let mut fpr = Vec::new();
    for mult in [1.0f64, 2.0, 4.0] {
        let report = run_averaged(
            &ScenarioSpec {
                timer_rtt_multiplier: mult,
                ..ScenarioSpec::default()
            },
            trials,
        )?;
        accuracy.push((mult, report.accuracy_pct));
        legit_drops.push((mult, report.legit_drop_pct));
        fpr.push((mult, report.false_positive_pct));
    }
    fig.push_series("alpha", accuracy);
    fig.push_series("Lr", legit_drops);
    fig.push_series("theta_p", fpr);
    Ok(fig)
}

/// Hashed vs full flow labels.
///
/// # Errors
///
/// Propagates build/run errors.
pub fn label_mode(trials: u64) -> Result<FigureData, String> {
    let mut fig = FigureData::new(
        "Ablation C",
        "Hashed vs full flow labels",
        "metric index (1=alpha 2=theta_p 3=Lr)",
        "percent",
    );
    for (label, mode) in [("hashed", LabelMode::Hashed), ("full", LabelMode::Full)] {
        let report = run_averaged(
            &ScenarioSpec {
                label_mode: mode,
                total_flows: 80,
                ..ScenarioSpec::default()
            },
            trials,
        )?;
        fig.push_series(
            label,
            vec![
                (1.0, report.accuracy_pct),
                (2.0, report.false_positive_pct),
                (3.0, report.legit_drop_pct),
            ],
        );
    }
    Ok(fig)
}

/// LogLog precision vs cardinality estimation error (pure sketch study —
/// the memory/accuracy trade-off behind the pushback traffic matrix).
#[must_use]
pub fn sketch_precision() -> FigureData {
    let mut fig = FigureData::new(
        "Ablation D",
        "LogLog precision vs estimation error (50k distinct items)",
        "registers (bytes)",
        "relative error (%)",
    );
    let truth = 50_000u64;
    let mut points = Vec::new();
    for p in Precision::all() {
        let mut sketch = LogLog::new(p);
        for i in 0..truth {
            sketch.insert_u64(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        let err = (sketch.estimate() - truth as f64).abs() / truth as f64 * 100.0;
        points.push((p.registers() as f64, err));
    }
    fig.push_series("LogLog", points);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_precision_error_shrinks_with_registers() {
        let fig = sketch_precision();
        let points = &fig.series[0].points;
        assert_eq!(points.len(), Precision::all().len());
        // Error at the largest precision must undercut the smallest.
        let first = points.first().unwrap().1;
        let last = points.last().unwrap().1;
        assert!(
            last < first,
            "error did not shrink: {first:.2}% -> {last:.2}%"
        );
    }
}
