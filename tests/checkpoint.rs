//! Differential suite for checkpoint/restore: a restored run must be
//! byte-identical to the straight run it branched from — report, both
//! bandwidth series, the full chained run ledger, the escalation log —
//! at every tested checkpoint instant; warm-started sweeps must
//! reproduce the cold grid at any worker count; and every corrupted
//! snapshot in the fixture corpus must be *rejected by name* (component
//! or header field), never silently loaded.

use mafic_suite::experiments::{figures, sweep, sweep_warm, EngineConfig};
use mafic_suite::netsim::SimTime;
use mafic_suite::obs::{SnapError, Snapshot};
use mafic_suite::topology::TransitTopology;
use mafic_suite::workload::{
    restore_run, resume_scenario, run_spec, RunOutcome, ScenarioSpec, WorkloadError,
};

/// The corpus scenario: a three-domain flood over a transit chain whose
/// attack ends mid-run, so the timeline offers a pristine start, a
/// mid-flood cascade, and a post-stand-down tail to checkpoint in.
fn flood_spec(checkpoint_at: Option<SimTime>) -> ScenarioSpec {
    ScenarioSpec {
        total_flows: 12,
        n_routers: 6,
        domains: 3,
        transit_topology: TransitTopology::Chain { depth: 1 },
        pushback_depth: 2,
        attack_end: Some(SimTime::from_secs_f64(2.2)),
        end: SimTime::from_secs_f64(3.5),
        ledger: true,
        trace_capacity: 32,
        checkpoint_at,
        seed: 7,
        ..ScenarioSpec::default()
    }
}

fn resumed_from(spec: &ScenarioSpec, bytes: &[u8]) -> RunOutcome {
    let (mut scenario, state) = restore_run(spec, bytes).expect("restore verifies");
    resume_scenario(&mut scenario, state).expect("resumed run completes")
}

fn assert_outcomes_identical(straight: &RunOutcome, resumed: &RunOutcome, ctx: &str) {
    assert_eq!(straight.report, resumed.report, "{ctx}: report");
    assert_eq!(
        straight.series, resumed.series,
        "{ctx}: offered-load series"
    );
    assert_eq!(
        straight.goodput_series, resumed.goodput_series,
        "{ctx}: goodput series"
    );
    assert_eq!(
        straight.triggered_at, resumed.triggered_at,
        "{ctx}: trigger instant"
    );
    assert_eq!(straight.atr_nodes, resumed.atr_nodes, "{ctx}: ATR nodes");
    assert_eq!(
        straight.escalations, resumed.escalations,
        "{ctx}: escalation log"
    );
    assert_eq!(straight.control, resumed.control, "{ctx}: control plane");
    assert_eq!(
        straight.stood_down_at, resumed.stood_down_at,
        "{ctx}: stand-down instant"
    );
    assert_eq!(
        straight.packets_sent, resumed.packets_sent,
        "{ctx}: packets sent"
    );
    let jsonl = |o: &RunOutcome| o.ledger.as_ref().expect("ledger enabled").to_jsonl();
    assert_eq!(jsonl(straight), jsonl(resumed), "{ctx}: run ledger");
    assert_eq!(
        straight.checkpoint, resumed.checkpoint,
        "{ctx}: re-surfaced checkpoint bytes"
    );
}

#[test]
fn restore_is_byte_identical_at_every_tested_instant() {
    // k=0 (pristine, pre-attack), mid-flood (the cascade is live), and
    // post-stand-down (the defense has already wound down).
    for secs in [0.0, 1.5, 3.2] {
        let spec = flood_spec(Some(SimTime::from_secs_f64(secs)));
        let straight = run_spec(spec.clone()).expect("straight run");
        let bytes = straight.checkpoint.as_ref().expect("checkpoint captured");
        let resumed = resumed_from(&spec, bytes);
        assert_outcomes_identical(&straight, &resumed, &format!("checkpoint at {secs}s"));
    }
}

#[test]
fn warm_sweep_reproduces_cold_sweep_at_1_and_4_workers() {
    let series = vec![("chain".to_string(), ())];
    let xs = vec![0.0, 2.0];
    let make = |_: &(), depth: f64| ScenarioSpec {
        pushback_depth: depth as u32,
        ledger: false,
        trace_capacity: 0,
        checkpoint_at: None,
        ..flood_spec(None)
    };
    // Branch where the depth knob is still inert: the attack has not
    // begun (default start 1.0s), so no escalation budget was consulted.
    let branch_at = flood_spec(None).attack_start;
    let cold = sweep(&series, &xs, &EngineConfig { jobs: 1, trials: 2 }, make).expect("cold");
    let warm1 = sweep_warm(
        &series,
        &xs,
        &EngineConfig { jobs: 1, trials: 2 },
        branch_at,
        make,
    )
    .expect("warm, 1 worker");
    let warm4 = sweep_warm(
        &series,
        &xs,
        &EngineConfig { jobs: 4, trials: 2 },
        branch_at,
        make,
    )
    .expect("warm, 4 workers");
    assert_eq!(cold, warm1, "warm sweep must equal the cold grid");
    assert_eq!(warm1, warm4, "worker count must not leak into the grid");
    // The figure layer consumes sweeps verbatim, so the rendered panels
    // are byte-identical too.
    assert_eq!(
        figures::fig8a_from_sweep(&cold).to_string(),
        figures::fig8a_from_sweep(&warm4).to_string()
    );
    assert_eq!(
        figures::fig8b_from_sweep(&cold).to_string(),
        figures::fig8b_from_sweep(&warm4).to_string()
    );
}

/// Captures the corpus checkpoint once per corruption test.
fn captured() -> (ScenarioSpec, Vec<u8>) {
    let spec = flood_spec(Some(SimTime::from_secs_f64(1.5)));
    let bytes = run_spec(spec.clone())
        .expect("straight run")
        .checkpoint
        .expect("checkpoint captured");
    (spec, bytes)
}

fn snap_err(
    result: Result<
        (
            mafic_suite::workload::Scenario,
            mafic_suite::workload::RunState,
        ),
        WorkloadError,
    >,
) -> SnapError {
    match result {
        Err(WorkloadError::Snapshot(e)) => e,
        Ok(_) => panic!("corrupted snapshot was accepted"),
        Err(other) => panic!("expected a snapshot error, got {other}"),
    }
}

#[test]
fn truncated_snapshot_is_rejected() {
    let (spec, bytes) = captured();
    for keep in [4, bytes.len() / 2, bytes.len() - 9] {
        let e = snap_err(restore_run(&spec, &bytes[..keep]));
        assert_eq!(e, SnapError::Truncated, "kept {keep} of {}", bytes.len());
    }
}

fn u64_at(bytes: &[u8], pos: &mut usize) -> u64 {
    let v = u64::from_le_bytes(bytes[*pos..*pos + 8].try_into().expect("8 bytes"));
    *pos += 8;
    v
}

fn str_at(bytes: &[u8], pos: &mut usize) -> String {
    let n = u64_at(bytes, pos) as usize;
    let s = String::from_utf8(bytes[*pos..*pos + n].to_vec()).expect("UTF-8 label");
    *pos += n;
    s
}

/// Walks the snapshot wire format (labels can also occur *inside*
/// payloads — the embedded ledger serializes component names — so
/// byte-searching for them is not an option) and returns every
/// section's `(label, payload offset, payload length)`.
fn section_payload_offsets(bytes: &[u8]) -> Vec<(String, usize, usize)> {
    let mut pos = 8 + 4; // magic + format version
    let _crate_version = str_at(bytes, &mut pos);
    pos += 8 * 4; // seed, fingerprint, at_nanos, interval index
    let n_hashes = u64_at(bytes, &mut pos) as usize;
    for _ in 0..n_hashes {
        let _label = str_at(bytes, &mut pos);
        pos += 8; // component hash
    }
    pos += 8; // header checksum
    let n_sections = u64_at(bytes, &mut pos) as usize;
    let mut out = Vec::with_capacity(n_sections);
    for _ in 0..n_sections {
        let label = str_at(bytes, &mut pos);
        pos += 8; // payload checksum
        let len = u64_at(bytes, &mut pos) as usize;
        out.push((label, pos, len));
        pos += len;
    }
    assert_eq!(pos, bytes.len(), "walk must consume the whole snapshot");
    out
}

#[test]
fn flipped_byte_in_every_section_names_that_section() {
    let (spec, bytes) = captured();
    let sections = section_payload_offsets(&bytes);
    assert!(
        sections.len() >= 13,
        "corpus covers the full stack: {sections:?}"
    );
    for (label, payload_start, payload_len) in &sections {
        assert!(
            *payload_len > 0,
            "{label}: empty payloads would dodge the flip"
        );
        let mut bad = bytes.clone();
        bad[*payload_start] ^= 0x40;
        let e = snap_err(restore_run(&spec, &bad));
        assert_eq!(
            e,
            SnapError::Corrupt {
                section: label.clone()
            },
            "flip in {label}"
        );
    }
}

#[test]
fn doctored_payload_with_fixed_checksums_names_the_component() {
    // Re-encoding after the flip recomputes the wire checksums, so only
    // the state-hash verification stands between a doctored snapshot
    // and a silently wrong resume.
    let (spec, bytes) = captured();
    let snap = Snapshot::decode(&bytes).expect("decodes");
    let mut doctored = Snapshot::new(snap.header.clone());
    doctored.component_hashes.clone_from(&snap.component_hashes);
    for label in snap.section_labels() {
        let mut payload = snap.section(label).expect("listed").to_vec();
        if label == "netsim/stats" {
            *payload.last_mut().expect("non-empty") ^= 0x01;
        }
        doctored.add_section(label, payload);
    }
    let e = snap_err(restore_run(&spec, &doctored.encode()));
    match e {
        SnapError::StateMismatch { component, .. } => assert_eq!(component, "netsim/stats"),
        other => panic!("expected a state-hash mismatch, got {other}"),
    }
}

#[test]
fn format_version_mismatch_is_rejected() {
    let (spec, bytes) = captured();
    // Layout: 8 magic bytes, then the u32 format version.
    let mut bad = bytes.clone();
    bad[8..12].copy_from_slice(&99u32.to_le_bytes());
    let e = snap_err(restore_run(&spec, &bad));
    assert_eq!(e, SnapError::Version { found: 99 });
}

#[test]
fn wrong_seed_and_wrong_fingerprint_are_rejected_by_field() {
    let (spec, bytes) = captured();
    let reseeded = ScenarioSpec {
        seed: spec.seed + 1,
        ..spec.clone()
    };
    match snap_err(restore_run(&reseeded, &bytes)) {
        SnapError::HeaderMismatch { field, .. } => assert_eq!(field, "seed"),
        other => panic!("expected a seed mismatch, got {other}"),
    }
    // Same seed, different spec: the fingerprint gate catches it first.
    let stretched = ScenarioSpec {
        end: SimTime::from_secs_f64(4.0),
        ..spec.clone()
    };
    match snap_err(restore_run(&stretched, &bytes)) {
        SnapError::HeaderMismatch { field, .. } => assert_eq!(field, "spec_fingerprint"),
        other => panic!("expected a fingerprint mismatch, got {other}"),
    }
}
