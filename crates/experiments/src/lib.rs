//! # mafic-experiments
//!
//! The experiment harness that regenerates every table and figure of the
//! MAFIC paper's evaluation, plus the ablation studies listed in
//! DESIGN.md.
//!
//! Each figure panel has a function in [`figures`] returning a
//! [`FigureData`] (named series of `(x, y)` points); the binaries under
//! `src/bin/` print them as aligned text tables. All scenario runs go
//! through the deterministic parallel [`engine`]: trial averaging is
//! controlled by `MAFIC_TRIALS` (default 3) and worker fan-out by
//! `MAFIC_JOBS` (default `available_parallelism()`); output is
//! byte-identical at any worker count.
//!
//! | Binary | Regenerates |
//! |--------|-------------|
//! | `tables` | Tables I and II + a measured default run |
//! | `fig3_accuracy` | Fig. 3(a), 3(b) |
//! | `fig4_cutting` | Fig. 4(a), 4(b) |
//! | `fig5_false_positive` | Fig. 5(a)–(c) |
//! | `fig6_false_negative` | Fig. 6(a)–(c) |
//! | `fig7_collateral` | Fig. 7 |
//! | `fig8_pushback_depth` | Fig. 8 (inter-domain pushback depth; ours) |
//! | `fig9_partial_deployment` | Fig. 9 (participation × transit policy; ours) |
//! | `fig10_malicious_pushback` | Fig. 10 (malicious pushback vs trust; ours) |
//! | `fig11_adaptive_adversary` | Fig. 11 (closed-loop attack strategies; ours) |
//! | `ablations` | DESIGN.md ablations A–D |
//! | `all_figures` | everything above |

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_docs)]

pub mod ablations;
pub mod engine;
pub mod figure;
pub mod figures;
pub mod sweep;
pub mod tables;

pub use engine::{
    run_jobs, run_specs, warm_sweep_enabled, warm_sweep_from_env_or_exit, EngineConfig,
};
pub use figure::{FigureData, Series};
pub use sweep::{average_reports, run_averaged, sweep, sweep_warm, SweepPoint, SweepSeries};
