//! The per-domain pushback coordinator state machine.
//!
//! One coordinator sits at every domain boundary. Driven once per
//! monitor interval with the victim-bound aggregate entering the
//! domain's Attack Transit Routers, it decides when to escalate the
//! defense one hop upstream, when to renew the resulting lease, and
//! when to tear everything down. The machine is pure — it emits
//! [`PushbackAction`]s and never touches the simulator — so the same
//! logic drives the workload runner and the unit tests below.
//!
//! ## Protocol
//!
//! * **Escalation (with hysteresis).** While defending, if the observed
//!   inflow stays above `threshold_bps` for `trigger_intervals`
//!   *consecutive* intervals (any dip resets the counter) and budget
//!   remains, send `PushbackRequest{budget-1}` upstream. The local
//!   deployment is already dropping this traffic; sustained boundary
//!   pressure means the flood must be cut closer to its sources.
//! * **Leases (soft state).** An upstream defense installed by a
//!   request lives only while `Refresh` messages keep arriving: the
//!   requester refreshes every `refresh_intervals`; a receiver that
//!   hears nothing for `hold_intervals` stands down on its own and
//!   forwards `Withdraw` to anyone *it* escalated to, so a dead
//!   requester cannot strand drops in the core. Refreshes carry the
//!   full lease state (victim + budget, RSVP-style), so a receiver
//!   that missed the original request on a congested link — or whose
//!   lease already lapsed — re-installs from the next refresh instead
//!   of staying dark.
//! * **Withdrawal.** When the requester stands down (the flood
//!   subsided and its local defense stopped), `Withdraw` cascades
//!   upstream hop by hop.

use mafic_netsim::{Addr, PushbackMsg};

/// Tunables of a domain coordinator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PushbackConfig {
    /// Escalate while the victim-bound inflow exceeds this (bytes/s).
    pub threshold_bps: f64,
    /// Consecutive intervals above threshold before escalating.
    pub trigger_intervals: u32,
    /// Send a lease `Refresh` upstream every this many intervals.
    pub refresh_intervals: u32,
    /// Stand down after this many intervals without hearing from the
    /// downstream requester (upstream domains only).
    pub hold_intervals: u32,
}

impl Default for PushbackConfig {
    fn default() -> Self {
        PushbackConfig {
            // A quarter of a 10 Mbit/s victim link, in bytes/s.
            threshold_bps: 312_500.0,
            trigger_intervals: 4,
            refresh_intervals: 5,
            hold_intervals: 12,
        }
    }
}

impl PushbackConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if !self.threshold_bps.is_finite() || self.threshold_bps <= 0.0 {
            return Err(format!(
                "threshold_bps must be finite and > 0, got {}",
                self.threshold_bps
            ));
        }
        if self.trigger_intervals == 0 || self.refresh_intervals == 0 || self.hold_intervals == 0 {
            return Err("interval counts must be >= 1".into());
        }
        if self.hold_intervals <= self.refresh_intervals {
            return Err("hold_intervals must exceed refresh_intervals".into());
        }
        Ok(())
    }
}

/// Where a coordinator sits on the pushback path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushbackRole {
    /// The victim's own domain: its defense lifecycle belongs to the
    /// local detector, so no lease applies.
    Victim,
    /// Any domain upstream of the victim: defends on request, holds a
    /// lease.
    Upstream,
}

/// An effect the coordinator asks its host (the workload runner) to
/// apply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PushbackAction {
    /// Activate the domain's ATR filters for `victim`.
    ActivateLocal {
        /// The victim to defend.
        victim: Addr,
    },
    /// Deactivate the domain's ATR filters (flushes their tables).
    DeactivateLocal,
    /// Send this message to every upstream neighbor, as a routed packet.
    SendUpstream(PushbackMsg),
}

/// The coordinator state machine for one domain boundary.
#[derive(Debug, Clone)]
pub struct DomainCoordinator {
    config: PushbackConfig,
    role: PushbackRole,
    defending: bool,
    victim: Option<Addr>,
    budget: u8,
    escalated: bool,
    above: u32,
    since_refresh: u32,
    since_heard: u32,
}

impl DomainCoordinator {
    /// Creates an idle coordinator.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation — a configuration bug.
    #[must_use]
    pub fn new(config: PushbackConfig, role: PushbackRole) -> Self {
        config.validate().expect("invalid PushbackConfig");
        DomainCoordinator {
            config,
            role,
            defending: false,
            victim: None,
            budget: 0,
            escalated: false,
            above: 0,
            since_refresh: 0,
            since_heard: 0,
        }
    }

    /// True while this domain's defense is (supposed to be) active.
    #[must_use]
    pub fn is_defending(&self) -> bool {
        self.defending
    }

    /// True once this domain has escalated upstream.
    #[must_use]
    pub fn is_escalated(&self) -> bool {
        self.escalated
    }

    /// The victim currently defended, if any.
    #[must_use]
    pub fn victim(&self) -> Option<Addr> {
        self.victim
    }

    /// Remaining escalation budget from this domain.
    #[must_use]
    pub fn budget(&self) -> u8 {
        self.budget
    }

    /// Victim-domain entry point: the local detector triggered the
    /// defense with `budget` escalation hops available. Idempotent.
    pub fn local_start(&mut self, victim: Addr, budget: u8) {
        if self.defending {
            return;
        }
        self.defending = true;
        self.victim = Some(victim);
        self.budget = budget;
        self.escalated = false;
        self.above = 0;
        self.since_refresh = 0;
    }

    /// Victim-domain entry point: the local defense stood down (e.g. a
    /// `PushbackStop`). Withdraws any escalated upstream defense.
    pub fn local_stop(&mut self, actions: &mut Vec<PushbackAction>) {
        if !self.defending {
            return;
        }
        self.defending = false;
        if self.escalated {
            let victim = self.victim.expect("escalated implies a victim");
            actions.push(PushbackAction::SendUpstream(PushbackMsg::Withdraw {
                victim,
            }));
        }
        self.escalated = false;
        self.above = 0;
        self.victim = None;
    }

    /// Deactivate the local defense and cascade the withdrawal.
    fn stand_down(&mut self, actions: &mut Vec<PushbackAction>) {
        self.defending = false;
        actions.push(PushbackAction::DeactivateLocal);
        if self.escalated {
            let victim = self.victim.expect("escalated implies a victim");
            actions.push(PushbackAction::SendUpstream(PushbackMsg::Withdraw {
                victim,
            }));
        }
        self.escalated = false;
        self.above = 0;
        self.since_heard = 0;
        self.victim = None;
    }

    /// Installs (or renews) the requested defense. Both
    /// `PushbackRequest` and `Refresh` land here: refreshes carry the
    /// full lease state, so an upstream that missed the original
    /// request (lost packet) or whose lease already lapsed re-installs
    /// from the next refresh instead of staying dark for the rest of
    /// the run.
    fn install(&mut self, victim: Addr, budget: u8, actions: &mut Vec<PushbackAction>) {
        self.since_heard = 0;
        if self.defending {
            // A repeated request can only widen the budget.
            self.budget = self.budget.max(budget);
        } else {
            self.defending = true;
            self.victim = Some(victim);
            self.budget = budget;
            self.escalated = false;
            self.above = 0;
            self.since_refresh = 0;
            actions.push(PushbackAction::ActivateLocal { victim });
        }
    }

    /// Feeds one message received over the domain's control channel.
    pub fn on_message(&mut self, msg: PushbackMsg, actions: &mut Vec<PushbackAction>) {
        match msg {
            PushbackMsg::PushbackRequest { victim, budget, .. }
            | PushbackMsg::Refresh { victim, budget } => {
                self.install(victim, budget, actions);
            }
            PushbackMsg::Withdraw { .. } => {
                if self.defending {
                    self.stand_down(actions);
                }
            }
        }
    }

    /// Advances the machine one monitor interval. `inflow_bps` is the
    /// victim-bound byte rate observed entering the domain's ATRs over
    /// the elapsed interval (pre-filter).
    pub fn on_interval(&mut self, inflow_bps: f64, actions: &mut Vec<PushbackAction>) {
        if !self.defending {
            return;
        }
        if self.role == PushbackRole::Upstream {
            self.since_heard += 1;
            if self.since_heard > self.config.hold_intervals {
                // Lease expired: the requester vanished.
                self.stand_down(actions);
                return;
            }
        }
        let victim = self.victim.expect("defending implies a victim");
        if self.escalated {
            self.since_refresh += 1;
            if self.since_refresh >= self.config.refresh_intervals {
                self.since_refresh = 0;
                actions.push(PushbackAction::SendUpstream(PushbackMsg::Refresh {
                    victim,
                    budget: self.budget.saturating_sub(1),
                }));
            }
        } else if self.budget > 0 {
            if inflow_bps > self.config.threshold_bps {
                self.above += 1;
            } else {
                self.above = 0; // Hysteresis: a dip restarts the count.
            }
            if self.above >= self.config.trigger_intervals {
                self.escalated = true;
                self.since_refresh = 0;
                actions.push(PushbackAction::SendUpstream(PushbackMsg::PushbackRequest {
                    victim,
                    aggregate_bps: inflow_bps as u64,
                    budget: self.budget - 1,
                }));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VICTIM: Addr = Addr::new(0x0AC8_0001);

    fn config() -> PushbackConfig {
        PushbackConfig {
            threshold_bps: 1000.0,
            trigger_intervals: 3,
            refresh_intervals: 2,
            hold_intervals: 5,
        }
    }

    fn victim_coord(budget: u8) -> DomainCoordinator {
        let mut c = DomainCoordinator::new(config(), PushbackRole::Victim);
        c.local_start(VICTIM, budget);
        c
    }

    fn tick(c: &mut DomainCoordinator, inflow: f64) -> Vec<PushbackAction> {
        let mut actions = Vec::new();
        c.on_interval(inflow, &mut actions);
        actions
    }

    fn deliver(c: &mut DomainCoordinator, msg: PushbackMsg) -> Vec<PushbackAction> {
        let mut actions = Vec::new();
        c.on_message(msg, &mut actions);
        actions
    }

    #[test]
    fn escalates_after_sustained_pressure() {
        let mut c = victim_coord(2);
        assert!(tick(&mut c, 5000.0).is_empty());
        assert!(tick(&mut c, 5000.0).is_empty());
        let actions = tick(&mut c, 5000.0);
        assert_eq!(
            actions,
            vec![PushbackAction::SendUpstream(PushbackMsg::PushbackRequest {
                victim: VICTIM,
                aggregate_bps: 5000,
                budget: 1,
            })]
        );
        assert!(c.is_escalated());
    }

    #[test]
    fn pressure_dip_resets_the_trigger_counter() {
        let mut c = victim_coord(1);
        let _ = tick(&mut c, 5000.0);
        let _ = tick(&mut c, 5000.0);
        let _ = tick(&mut c, 10.0); // dip
        let _ = tick(&mut c, 5000.0);
        let _ = tick(&mut c, 5000.0);
        assert!(!c.is_escalated(), "counter must restart after the dip");
        assert!(!tick(&mut c, 5000.0).is_empty());
        assert!(c.is_escalated());
    }

    #[test]
    fn zero_budget_never_escalates() {
        let mut c = victim_coord(0);
        for _ in 0..20 {
            assert!(tick(&mut c, 1e9).is_empty());
        }
        assert!(!c.is_escalated());
    }

    #[test]
    fn idle_coordinator_does_nothing() {
        let mut c = DomainCoordinator::new(config(), PushbackRole::Upstream);
        assert!(tick(&mut c, 1e9).is_empty());
        assert!(!c.is_defending());
    }

    #[test]
    fn request_activates_and_budget_caps_the_cascade() {
        let mut c = DomainCoordinator::new(config(), PushbackRole::Upstream);
        let actions = deliver(
            &mut c,
            PushbackMsg::PushbackRequest {
                victim: VICTIM,
                aggregate_bps: 9000,
                budget: 1,
            },
        );
        assert_eq!(
            actions,
            vec![PushbackAction::ActivateLocal { victim: VICTIM }]
        );
        assert!(c.is_defending());
        assert_eq!(c.budget(), 1);
        // Sustained pressure escalates once more, with budget exhausted.
        let mut escalated = Vec::new();
        for _ in 0..3 {
            escalated = tick(&mut c, 5000.0);
        }
        assert!(matches!(
            escalated[..],
            [PushbackAction::SendUpstream(PushbackMsg::PushbackRequest {
                budget: 0,
                ..
            })]
        ));
    }

    #[test]
    fn escalated_coordinator_refreshes_periodically() {
        let mut c = victim_coord(1);
        for _ in 0..3 {
            let _ = tick(&mut c, 5000.0);
        }
        assert!(c.is_escalated());
        let a1 = tick(&mut c, 5000.0);
        let a2 = tick(&mut c, 5000.0);
        assert!(a1.is_empty());
        assert_eq!(
            a2,
            vec![PushbackAction::SendUpstream(PushbackMsg::Refresh {
                victim: VICTIM,
                budget: 0,
            })]
        );
    }

    #[test]
    fn lease_expires_without_refresh() {
        let mut c = DomainCoordinator::new(config(), PushbackRole::Upstream);
        let _ = deliver(
            &mut c,
            PushbackMsg::PushbackRequest {
                victim: VICTIM,
                aggregate_bps: 9000,
                budget: 0,
            },
        );
        let mut all = Vec::new();
        for _ in 0..6 {
            all.extend(tick(&mut c, 10.0));
        }
        assert_eq!(all, vec![PushbackAction::DeactivateLocal]);
        assert!(!c.is_defending());
    }

    #[test]
    fn refresh_renews_the_lease() {
        let mut c = DomainCoordinator::new(config(), PushbackRole::Upstream);
        let _ = deliver(
            &mut c,
            PushbackMsg::PushbackRequest {
                victim: VICTIM,
                aggregate_bps: 9000,
                budget: 0,
            },
        );
        for round in 0..4 {
            for _ in 0..4 {
                assert!(tick(&mut c, 10.0).is_empty(), "round {round}");
            }
            let _ = deliver(
                &mut c,
                PushbackMsg::Refresh {
                    victim: VICTIM,
                    budget: 0,
                },
            );
        }
        assert!(c.is_defending(), "refreshed lease must stay alive");
    }

    #[test]
    fn refresh_reinstalls_a_lapsed_or_never_installed_lease() {
        // Soft-state recovery: the original request was lost (or the
        // lease expired) — the next full-state refresh must re-install
        // the defense, not just reset a timer nobody is running.
        let mut c = DomainCoordinator::new(config(), PushbackRole::Upstream);
        let actions = deliver(
            &mut c,
            PushbackMsg::Refresh {
                victim: VICTIM,
                budget: 1,
            },
        );
        assert_eq!(
            actions,
            vec![PushbackAction::ActivateLocal { victim: VICTIM }]
        );
        assert!(c.is_defending());
        assert_eq!(c.budget(), 1);
        // Expire the lease, then refresh again: same recovery.
        let mut all = Vec::new();
        for _ in 0..7 {
            all.extend(tick(&mut c, 10.0));
        }
        assert!(all.contains(&PushbackAction::DeactivateLocal));
        assert!(!c.is_defending());
        let actions = deliver(
            &mut c,
            PushbackMsg::Refresh {
                victim: VICTIM,
                budget: 1,
            },
        );
        assert_eq!(
            actions,
            vec![PushbackAction::ActivateLocal { victim: VICTIM }]
        );
        assert!(c.is_defending());
    }

    #[test]
    fn withdraw_cascades_through_an_escalated_domain() {
        let mut c = DomainCoordinator::new(config(), PushbackRole::Upstream);
        let _ = deliver(
            &mut c,
            PushbackMsg::PushbackRequest {
                victim: VICTIM,
                aggregate_bps: 9000,
                budget: 2,
            },
        );
        for _ in 0..3 {
            let _ = tick(&mut c, 5000.0);
        }
        assert!(c.is_escalated());
        let actions = deliver(&mut c, PushbackMsg::Withdraw { victim: VICTIM });
        assert_eq!(
            actions,
            vec![
                PushbackAction::DeactivateLocal,
                PushbackAction::SendUpstream(PushbackMsg::Withdraw { victim: VICTIM }),
            ]
        );
        assert!(!c.is_defending());
    }

    #[test]
    fn lease_expiry_also_cascades_withdrawal() {
        let mut c = DomainCoordinator::new(config(), PushbackRole::Upstream);
        let _ = deliver(
            &mut c,
            PushbackMsg::PushbackRequest {
                victim: VICTIM,
                aggregate_bps: 9000,
                budget: 1,
            },
        );
        // Escalate under pressure, then starve the lease. The coordinator
        // keeps refreshing its own upstream until its lease lapses — at
        // expiry it must deactivate AND withdraw what it escalated.
        let mut all = Vec::new();
        for _ in 0..10 {
            all.extend(tick(&mut c, 5000.0));
        }
        assert!(all.contains(&PushbackAction::DeactivateLocal));
        assert!(
            all.contains(&PushbackAction::SendUpstream(PushbackMsg::Withdraw {
                victim: VICTIM
            }))
        );
        assert!(!c.is_defending());
    }

    #[test]
    fn local_stop_withdraws_escalation() {
        let mut c = victim_coord(1);
        for _ in 0..3 {
            let _ = tick(&mut c, 5000.0);
        }
        assert!(c.is_escalated());
        let mut actions = Vec::new();
        c.local_stop(&mut actions);
        assert_eq!(
            actions,
            vec![PushbackAction::SendUpstream(PushbackMsg::Withdraw {
                victim: VICTIM
            })]
        );
        assert!(!c.is_defending());
        // Restart works from scratch.
        c.local_start(VICTIM, 1);
        assert!(c.is_defending());
        assert!(!c.is_escalated());
    }

    #[test]
    fn config_validation() {
        assert!(PushbackConfig::default().validate().is_ok());
        assert!(PushbackConfig {
            threshold_bps: 0.0,
            ..config()
        }
        .validate()
        .is_err());
        assert!(PushbackConfig {
            trigger_intervals: 0,
            ..config()
        }
        .validate()
        .is_err());
        assert!(PushbackConfig {
            hold_intervals: 2,
            refresh_intervals: 2,
            ..config()
        }
        .validate()
        .is_err());
    }
}
